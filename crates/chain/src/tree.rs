//! The block tree: every observed block, with engine-driven fork choice.
//!
//! Matches the Ethereum yellow paper's view of a "block tree" over which a
//! fork is "a disagreement between nodes as to which root-to-leaf path down
//! the block tree is the best blockchain" (§III-C4). Each node of the
//! simulated network owns one `BlockTree`; the measurement pipeline also
//! builds a global one from ground truth.
//!
//! Fork choice is delegated to a pluggable [`Consensus`] engine via an
//! embedded [`ForkChoiceTree`]. The default ([`HeaviestChain`]) is the
//! historical rule: the chain with the greatest total difficulty wins;
//! ties keep the incumbent (first-seen), which is Geth's behavior under
//! constant difficulty.

use std::fmt;
use std::sync::Arc;

use ethmeter_types::{BlockHash, BlockNumber, FxHashMap, PoolId};

use crate::block::{Block, BlockBuilder};
use crate::consensus::{Consensus, HeaviestChain, Score};
use crate::forkchoice::ForkChoiceTree;

/// Miner id used for the synthetic genesis block.
pub const GENESIS_MINER: PoolId = PoolId(u16::MAX);

/// Result of inserting a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The block attached to the tree.
    Attached {
        /// True if this block (or an orphan it connected) became the head.
        new_head: bool,
        /// Number of canonical blocks replaced (0 for a plain extension).
        reorg_depth: u64,
        /// Hashes of previously orphaned blocks that this insertion
        /// connected (in connection order, not including the block itself).
        connected_orphans: Vec<BlockHash>,
    },
    /// The parent is unknown; the block was buffered and will connect
    /// automatically when its parent arrives.
    Orphaned,
}

/// Why an insertion was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertError {
    /// The block (by hash) is already present.
    Duplicate(BlockHash),
    /// `number` is not `parent.number + 1`.
    HeightMismatch {
        /// The offending block.
        hash: BlockHash,
        /// Height the parent implies.
        expected: BlockNumber,
        /// Height the block claims.
        got: BlockNumber,
    },
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertError::Duplicate(h) => write!(f, "duplicate block {h}"),
            InsertError::HeightMismatch {
                hash,
                expected,
                got,
            } => write!(
                f,
                "block {hash} claims height {got}, parent implies {expected}"
            ),
        }
    }
}

impl std::error::Error for InsertError {}

/// A tree of blocks with canonical-chain tracking.
#[derive(Debug, Clone)]
pub struct BlockTree {
    blocks: FxHashMap<BlockHash, Block>,
    children: FxHashMap<BlockHash, Vec<BlockHash>>,
    /// Per-block scores, head selection, and safe/finalized markers.
    forkchoice: ForkChoiceTree,
    /// canonical[n] = hash of the canonical block at height n.
    canonical: Vec<BlockHash>,
    genesis: BlockHash,
    /// uncle hash -> the canonical-chain block that referenced it first.
    included_uncles: FxHashMap<BlockHash, BlockHash>,
    /// parent hash -> blocks waiting for that parent.
    orphans: FxHashMap<BlockHash, Vec<Block>>,
    reorg_count: u64,
}

impl BlockTree {
    /// Creates a tree containing only the genesis block, under the default
    /// [`HeaviestChain`] engine (bit-identical to the historical rule).
    pub fn new() -> Self {
        Self::with_consensus(Arc::new(HeaviestChain))
    }

    /// Creates a genesis-only tree driven by `engine`.
    pub fn with_consensus(engine: Arc<dyn Consensus>) -> Self {
        let genesis = BlockBuilder::new(BlockHash::ZERO, 0, GENESIS_MINER).build();
        let gh = genesis.hash();
        let mut blocks = FxHashMap::default();
        blocks.insert(gh, genesis);
        BlockTree {
            blocks,
            children: FxHashMap::default(),
            forkchoice: ForkChoiceTree::new(gh, engine),
            canonical: vec![gh],
            genesis: gh,
            included_uncles: FxHashMap::default(),
            orphans: FxHashMap::default(),
            reorg_count: 0,
        }
    }

    /// The consensus engine driving this tree's fork choice.
    pub fn consensus(&self) -> &Arc<dyn Consensus> {
        self.forkchoice.consensus()
    }

    /// The genesis hash (same for every tree: all nodes share one genesis).
    pub fn genesis_hash(&self) -> BlockHash {
        self.genesis
    }

    /// The hash every [`BlockTree::new`] roots at, without building a
    /// tree. Drivers that materialize their ground-truth tree only at the
    /// campaign boundary still need this hash at construction time.
    pub fn shared_genesis_hash() -> BlockHash {
        BlockBuilder::new(BlockHash::ZERO, 0, GENESIS_MINER)
            .build()
            .hash()
    }

    /// The current best block.
    pub fn head(&self) -> BlockHash {
        self.forkchoice.head()
    }

    /// The newest canonical block at least [`Consensus::safe_depth`]
    /// confirmations behind the head (genesis on short chains).
    pub fn safe(&self) -> BlockHash {
        self.forkchoice.safe()
    }

    /// The newest canonical block at least [`Consensus::finalized_depth`]
    /// confirmations behind the head (genesis on short chains).
    pub fn finalized(&self) -> BlockHash {
        self.forkchoice.finalized()
    }

    /// The height of the current best block.
    pub fn head_number(&self) -> BlockNumber {
        self.canonical.len() as BlockNumber - 1
    }

    /// Total number of attached blocks, including genesis and forks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if only genesis is present.
    pub fn is_empty(&self) -> bool {
        self.blocks.len() == 1
    }

    /// Number of blocks buffered waiting for a parent.
    pub fn orphan_count(&self) -> usize {
        self.orphans.values().map(Vec::len).sum()
    }

    /// How many reorgs (head switches replacing ≥1 canonical block) have
    /// happened.
    pub fn reorg_count(&self) -> u64 {
        self.reorg_count
    }

    /// Looks up a block.
    pub fn get(&self, hash: BlockHash) -> Option<&Block> {
        self.blocks.get(&hash)
    }

    /// True if the block is attached (orphans don't count).
    pub fn contains(&self, hash: BlockHash) -> bool {
        self.blocks.contains_key(&hash)
    }

    /// Fork-choice score of an attached block under this tree's engine.
    pub fn score(&self, hash: BlockHash) -> Option<Score> {
        self.forkchoice.score(hash)
    }

    /// Total difficulty of an attached block. Under the default
    /// [`HeaviestChain`] engine this is the historical total-difficulty
    /// value; under other engines it is that engine's score.
    pub fn total_difficulty(&self, hash: BlockHash) -> Option<u128> {
        self.forkchoice.score(hash)
    }

    /// The canonical hash at `number`, if the chain reaches that height.
    pub fn canonical_hash(&self, number: BlockNumber) -> Option<BlockHash> {
        self.canonical.get(number as usize).copied()
    }

    /// True if `hash` is on the canonical chain.
    pub fn is_canonical(&self, hash: BlockHash) -> bool {
        self.blocks
            .get(&hash)
            .is_some_and(|b| self.canonical_hash(b.number()) == Some(hash))
    }

    /// Blocks of the canonical chain in height order (including genesis).
    pub fn canonical_blocks(&self) -> impl Iterator<Item = &Block> + '_ {
        self.canonical
            .iter()
            .map(move |h| self.blocks.get(h).expect("canonical entries attached"))
    }

    /// All attached blocks in arbitrary (but deterministic) order.
    /// Consumers that produce output must sort or fold commutatively.
    pub fn all_blocks(&self) -> impl Iterator<Item = &Block> + '_ {
        // detlint::allow(unordered-iter, reason = "documented-unordered accessor; FxHashMap order is deterministic per process and every consumer sorts or folds commutatively")
        self.blocks.values()
    }

    /// Attached blocks not on the canonical chain (fork blocks), excluding
    /// genesis, in arbitrary (but deterministic) order.
    pub fn non_canonical_blocks(&self) -> impl Iterator<Item = &Block> + '_ {
        self.blocks
            // detlint::allow(unordered-iter, reason = "documented-unordered accessor; FxHashMap order is deterministic per process and every consumer sorts or folds commutatively")
            .values()
            .filter(move |b| !self.is_canonical(b.hash()))
    }

    /// Children of a block.
    pub fn children_of(&self, hash: BlockHash) -> &[BlockHash] {
        self.children.get(&hash).map_or(&[], Vec::as_slice)
    }

    /// The ancestor of `hash` at height `number`, walking parent links.
    pub fn ancestor_at(&self, hash: BlockHash, number: BlockNumber) -> Option<BlockHash> {
        let mut cur = self.blocks.get(&hash)?;
        if number > cur.number() {
            return None;
        }
        while cur.number() > number {
            cur = self.blocks.get(&cur.parent())?;
        }
        Some(cur.hash())
    }

    /// True if `ancestor` is an ancestor of (or equal to) `descendant`.
    pub fn is_ancestor(&self, ancestor: BlockHash, descendant: BlockHash) -> bool {
        let Some(a) = self.blocks.get(&ancestor) else {
            return false;
        };
        self.ancestor_at(descendant, a.number()) == Some(ancestor)
    }

    /// Confirmations of a canonical block: `head_number - number`.
    /// `None` if the block is unknown or currently off-chain.
    pub fn confirmations(&self, hash: BlockHash) -> Option<u64> {
        if self.is_canonical(hash) {
            let n = self.blocks[&hash].number();
            Some(self.head_number() - n)
        } else {
            None
        }
    }

    /// The canonical block that referenced `hash` as an uncle, if any.
    pub fn uncle_included_in(&self, hash: BlockHash) -> Option<BlockHash> {
        self.included_uncles.get(&hash).copied()
    }

    /// True if `hash` has been referenced as an uncle by any inserted block.
    pub fn is_recognized_uncle(&self, hash: BlockHash) -> bool {
        self.included_uncles.contains_key(&hash)
    }

    /// Inserts a block.
    ///
    /// Unknown-parent blocks are buffered ([`InsertOutcome::Orphaned`]) and
    /// automatically connected when the parent arrives — mirroring Geth's
    /// fetcher queue.
    ///
    /// # Errors
    ///
    /// [`InsertError::Duplicate`] if the hash is already attached or
    /// buffered; any error from the engine's [`Consensus::validate`] hook
    /// (by default [`InsertError::HeightMismatch`] if `number` disagrees
    /// with the parent).
    pub fn insert(&mut self, block: Block) -> Result<InsertOutcome, InsertError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash)
            || self
                .orphans
                .values()
                .any(|v| v.iter().any(|b| b.hash() == hash))
        {
            return Err(InsertError::Duplicate(hash));
        }
        let parent_hash = block.parent();
        let Some(parent) = self.blocks.get(&parent_hash) else {
            self.orphans.entry(parent_hash).or_default().push(block);
            return Ok(InsertOutcome::Orphaned);
        };
        self.forkchoice.consensus().validate(&block, parent)?;

        let mut new_head = false;
        let mut reorg_depth = 0u64;
        self.attach(block, &mut new_head, &mut reorg_depth);

        // Connect any orphans now reachable, breadth-first.
        let mut connected = Vec::new();
        let mut frontier = vec![hash];
        while let Some(parent) = frontier.pop() {
            let Some(waiting) = self.orphans.remove(&parent) else {
                continue;
            };
            for orphan in waiting {
                let oh = orphan.hash();
                // Invalid orphans are discarded silently: they can only
                // come from a corrupted producer, which the simulator
                // never creates.
                let valid = self
                    .forkchoice
                    .consensus()
                    .validate(&orphan, &self.blocks[&parent])
                    .is_ok();
                if valid {
                    self.attach(orphan, &mut new_head, &mut reorg_depth);
                    connected.push(oh);
                    frontier.push(oh);
                }
            }
        }

        Ok(InsertOutcome::Attached {
            new_head,
            reorg_depth,
            connected_orphans: connected,
        })
    }

    /// Attaches a block whose parent is present, updating fork choice.
    fn attach(&mut self, block: Block, new_head: &mut bool, reorg_depth: &mut u64) {
        let hash = block.hash();
        let parent_hash = block.parent();
        for &u in block.uncles() {
            self.included_uncles.entry(u).or_insert(hash);
        }
        self.children.entry(parent_hash).or_default().push(hash);
        let moved = self
            .forkchoice
            .insert(
                hash,
                parent_hash,
                block.header().difficulty(),
                block.uncles().len(),
            )
            .expect("attach precondition: parent scored, hash fresh");
        self.blocks.insert(hash, block);

        if moved {
            let depth = self.switch_head(hash);
            self.forkchoice.update_markers(&self.canonical);
            *new_head = true;
            if depth > 0 {
                *reorg_depth = (*reorg_depth).max(depth);
                self.reorg_count += 1;
            }
        }
    }

    /// Rebuilds the canonical index for `new_head` (the fork choice has
    /// already moved the head marker); returns how many previously
    /// canonical blocks were replaced.
    fn switch_head(&mut self, new_head: BlockHash) -> u64 {
        // Collect the non-canonical suffix of the new head's chain.
        let mut path = Vec::new();
        let mut cur = new_head;
        loop {
            let b = &self.blocks[&cur];
            let n = b.number() as usize;
            if self.canonical.get(n) == Some(&cur) {
                break;
            }
            path.push(cur);
            cur = b.parent();
        }
        let fork_height = self.blocks[&cur].number(); // last common block
        let old_len = self.canonical.len() as u64;
        let replaced = old_len.saturating_sub(fork_height + 1);
        self.canonical.truncate(fork_height as usize + 1);
        self.canonical.extend(path.iter().rev());
        replaced
    }
}

impl Default for BlockTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethmeter_types::TxId;

    fn child(tree: &BlockTree, parent: BlockHash, miner: u16, salt: u64) -> Block {
        let number = tree.get(parent).expect("parent").number() + 1;
        BlockBuilder::new(parent, number, PoolId(miner))
            .salt(salt)
            .build()
    }

    fn extend(tree: &mut BlockTree, parent: BlockHash, miner: u16, salt: u64) -> BlockHash {
        let b = child(tree, parent, miner, salt);
        let h = b.hash();
        match tree.insert(b) {
            Ok(InsertOutcome::Attached { .. }) => h,
            other => panic!("unexpected insert outcome: {other:?}"),
        }
    }

    #[test]
    fn linear_chain_extends_head() {
        let mut tree = BlockTree::new();
        let mut cur = tree.genesis_hash();
        for i in 0..10 {
            cur = extend(&mut tree, cur, 0, i);
            assert_eq!(tree.head(), cur);
            assert_eq!(tree.head_number(), i + 1);
            assert!(tree.is_canonical(cur));
        }
        assert_eq!(tree.len(), 11);
        assert_eq!(tree.reorg_count(), 0);
        assert_eq!(tree.canonical_blocks().count(), 11);
    }

    #[test]
    fn fork_does_not_displace_equal_td_head() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let a = extend(&mut tree, g, 0, 1);
        // Competing block at the same height: same TD, head must stay.
        let b = child(&tree, tree.genesis_hash(), 1, 2);
        let bh = b.hash();
        let out = tree.insert(b).expect("attached");
        assert!(matches!(
            out,
            InsertOutcome::Attached {
                new_head: false,
                ..
            }
        ));
        assert_eq!(tree.head(), a);
        assert!(!tree.is_canonical(bh));
        assert_eq!(tree.non_canonical_blocks().count(), 1);
    }

    #[test]
    fn longer_fork_triggers_reorg() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let a1 = extend(&mut tree, g, 0, 1);
        let _a2 = extend(&mut tree, a1, 0, 2);
        // Fork from genesis, three blocks long: must displace the 2-chain.
        let b1 = extend(&mut tree, g, 1, 3);
        assert_eq!(tree.head_number(), 2, "2-chain still best");
        let b2 = extend(&mut tree, b1, 1, 4);
        assert_eq!(tree.head_number(), 2, "tie keeps incumbent");
        let b3 = extend(&mut tree, b2, 1, 5);
        assert_eq!(tree.head(), b3);
        assert_eq!(tree.head_number(), 3);
        assert!(tree.is_canonical(b1) && tree.is_canonical(b2));
        assert!(!tree.is_canonical(a1));
        assert_eq!(tree.reorg_count(), 1);
        assert_eq!(tree.canonical_hash(1), Some(b1));
    }

    #[test]
    fn reorg_depth_is_reported() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let a1 = extend(&mut tree, g, 0, 1);
        let _a2 = extend(&mut tree, a1, 0, 2);
        let b1 = extend(&mut tree, g, 1, 3);
        let b2 = extend(&mut tree, b1, 1, 4);
        let b3 = child(&tree, b2, 1, 5);
        match tree.insert(b3).expect("ok") {
            InsertOutcome::Attached {
                new_head,
                reorg_depth,
                ..
            } => {
                assert!(new_head);
                assert_eq!(reorg_depth, 2); // a1, a2 replaced
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn orphans_buffer_and_connect() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let b1 = child(&tree, g, 0, 1);
        let b1h = b1.hash();
        let b2 = BlockBuilder::new(b1h, 2, PoolId(0)).salt(2).build();
        let b2h = b2.hash();
        let b3 = BlockBuilder::new(b2h, 3, PoolId(0)).salt(3).build();
        let b3h = b3.hash();

        // Arrive out of order: 3, 2, then 1.
        assert_eq!(tree.insert(b3).expect("ok"), InsertOutcome::Orphaned);
        assert_eq!(tree.insert(b2).expect("ok"), InsertOutcome::Orphaned);
        assert_eq!(tree.orphan_count(), 2);
        match tree.insert(b1).expect("ok") {
            InsertOutcome::Attached {
                new_head,
                connected_orphans,
                ..
            } => {
                assert!(new_head);
                assert_eq!(connected_orphans, vec![b2h, b3h]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(tree.orphan_count(), 0);
        assert_eq!(tree.head(), b3h);
        assert_eq!(tree.head_number(), 3);
    }

    #[test]
    fn duplicate_rejected_even_while_orphaned() {
        let mut tree = BlockTree::new();
        let stranger = BlockBuilder::new(BlockHash(123), 5, PoolId(0)).build();
        assert_eq!(
            tree.insert(stranger.clone()).expect("ok"),
            InsertOutcome::Orphaned
        );
        assert!(matches!(
            tree.insert(stranger.clone()),
            Err(InsertError::Duplicate(_))
        ));
        // Also duplicate of an attached block.
        let g = tree.genesis_hash();
        let b = child(&tree, g, 0, 1);
        tree.insert(b.clone()).expect("ok");
        assert!(matches!(tree.insert(b), Err(InsertError::Duplicate(_))));
    }

    #[test]
    fn height_mismatch_rejected() {
        let mut tree = BlockTree::new();
        let bad = BlockBuilder::new(tree.genesis_hash(), 5, PoolId(0)).build();
        match tree.insert(bad) {
            Err(InsertError::HeightMismatch { expected, got, .. }) => {
                assert_eq!(expected, 1);
                assert_eq!(got, 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ancestry_queries() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let b1 = extend(&mut tree, g, 0, 1);
        let b2 = extend(&mut tree, b1, 0, 2);
        let b3 = extend(&mut tree, b2, 0, 3);
        assert_eq!(tree.ancestor_at(b3, 1), Some(b1));
        assert_eq!(tree.ancestor_at(b3, 3), Some(b3));
        assert_eq!(tree.ancestor_at(b1, 3), None);
        assert!(tree.is_ancestor(b1, b3));
        assert!(tree.is_ancestor(b3, b3));
        assert!(!tree.is_ancestor(b3, b1));
        assert!(tree.is_ancestor(g, b3));
    }

    #[test]
    fn confirmations_track_head() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let b1 = extend(&mut tree, g, 0, 1);
        assert_eq!(tree.confirmations(b1), Some(0));
        let mut cur = b1;
        for i in 0..12 {
            cur = extend(&mut tree, cur, 0, 100 + i);
        }
        assert_eq!(tree.confirmations(b1), Some(12));
        // A fork block has no confirmations.
        let f = child(&tree, g, 9, 999);
        let fh = f.hash();
        tree.insert(f).expect("ok");
        assert_eq!(tree.confirmations(fh), None);
    }

    #[test]
    fn uncle_bookkeeping() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let a1 = extend(&mut tree, g, 0, 1);
        let f1 = child(&tree, g, 1, 2);
        let f1h = f1.hash();
        tree.insert(f1).expect("ok");
        assert!(!tree.is_recognized_uncle(f1h));
        // a2 references f1 as uncle.
        let a2 = BlockBuilder::new(a1, 2, PoolId(0))
            .uncles(vec![f1h])
            .build();
        let a2h = a2.hash();
        tree.insert(a2).expect("ok");
        assert!(tree.is_recognized_uncle(f1h));
        assert_eq!(tree.uncle_included_in(f1h), Some(a2h));
    }

    #[test]
    fn tx_accessors_preserved_through_tree() {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let b = BlockBuilder::new(g, 1, PoolId(4))
            .txs(vec![TxId(1), TxId(2)])
            .build();
        let h = b.hash();
        tree.insert(b).expect("ok");
        assert_eq!(tree.get(h).expect("present").txs(), &[TxId(1), TxId(2)]);
    }

    #[test]
    fn default_is_new() {
        let tree = BlockTree::default();
        assert!(tree.is_empty());
        assert_eq!(tree.head(), tree.genesis_hash());
    }
}
