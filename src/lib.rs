//! # ethmeter
//!
//! A geo-distributed measurement and simulation toolkit for Ethereum-like
//! blockchains — a from-scratch Rust reproduction of
//! *Impact of Geo-distribution and Mining Pools on Blockchains: A Study of
//! Ethereum* (Silva, Vavřička, Barreto, Matos; IEEE/IFIP DSN 2020).
//!
//! This facade crate re-exports the full public API of the workspace. Most
//! applications interact with four layers:
//!
//! 1. **Scenario construction** — [`core::scenario::Scenario`] describes a
//!    simulated Ethereum network: topology, geography, mining pools (with
//!    hash-power shares, probabilistic selfish-strategy knobs, and stateful
//!    [`mining::PoolBehavior`]s — honest publishing or the selfish-mining
//!    withholding machine), transaction workload, and the measurement
//!    vantage points.
//! 2. **Campaign execution** — [`core::runner`] runs the discrete-event
//!    simulation and returns the observers' raw logs plus ground truth.
//! 3. **Grid execution** — [`core::grid::Grid`] fans a scenario out over
//!    named parameter axes × seeds on parallel workers, reducing every
//!    outcome through streaming [`core::metric::Metric`] collectors.
//! 4. **Analysis** — [`analysis`] turns logs into the paper's tables and
//!    figures (propagation delay PDFs, first-observation shares, redundancy,
//!    commit-time CDFs, empty-block censuses, fork tables, sequence CDFs);
//!    every report family is also a streaming [`analysis::Reduce`]
//!    accumulator, so the same tables compute across a whole grid.
//!
//! Every result is a pure function of `(scenario, seed)` — reruns,
//! debug vs. release, and parallel grids are bit-identical. That
//! invariant is machine-enforced by the `detlint` static-analysis gate
//! (`cargo run -p ethmeter-detlint -- check`); see `DETERMINISM.md` at
//! the repository root for the rule catalog and pragma syntax.
//!
//! ## Quickstart: one campaign
//!
//! ```
//! use ethmeter::prelude::*;
//!
//! // A small, fast scenario (hundreds of nodes, minutes of simulated time).
//! let scenario = Scenario::builder()
//!     .preset(Preset::Tiny)
//!     .seed(42)
//!     .build();
//! let outcome = run_campaign(&scenario);
//! let report = analysis::propagation::analyze(&outcome.campaign);
//! assert!(report.delays.count() > 0);
//! ```
//!
//! ## Quickstart: a cross-seed grid
//!
//! The paper's claims are statistics *across* runs. A [`core::grid::Grid`]
//! runs the full cartesian product of its axes and streams every outcome
//! through [`core::metric::Metric`] collectors — here Figure 1 pooled over
//! all runs, plus a per-grid-point results table aggregated across seeds
//! (a Table-1-style cross-seed row per configuration):
//!
//! ```
//! use ethmeter::prelude::*;
//! use ethmeter::analysis::propagation::Propagation;
//!
//! let base = Scenario::builder()
//!     .preset(Preset::Tiny)
//!     .duration(SimDuration::from_mins(2))
//!     .build();
//! let outcome = Grid::new(base)
//!     .seed_range(1, 3)
//!     .axis("tx_rate", [0.5, 1.0], |s, &rate| s.set_tx_rate(rate))
//!     .run((
//!         Analyze::new(Propagation::new()),
//!         Scalars::new().column("head", |_, o| {
//!             o.campaign.truth.tree.head_number() as f64
//!         }),
//!     ));
//! let (fig1, table) = outcome.output;
//! assert!(fig1.blocks_measured > 0);
//! assert_eq!(table.rows.len(), 2); // one aggregated row per tx_rate
//! println!("{table}");             // or table.to_csv() / table.to_json()
//! ```
//!
//! ## Memory model
//!
//! What a grid retains is decided by its metric, not the grid:
//!
//! - **Streamed** (the default posture): [`core::metric::Analyze`],
//!   [`core::metric::Scalars`], and [`core::metric::PerPoint`] reduce each
//!   [`core::runner::CampaignOutcome`] to compact summaries the moment the
//!   run completes; the observer logs and ground-truth tree are dropped.
//!   Peak memory is ~one campaign's footprint per worker thread, however
//!   many runs the grid has (the bench suite's `grid` section certifies
//!   this on every run).
//! - **Retained**: [`core::metric::RetainRuns`] (and the [`core::sweep::Sweep`]
//!   convenience layer built on it) keeps every outcome in full — memory
//!   grows linearly with the grid. Use it when tests or tooling need the
//!   complete datasets.
//!
//! Either way, results are **bit-identical across thread counts** and to a
//! sequential `run_campaign` loop: per-job metric instances observe one
//! outcome each and fold in grid order.
//!
//! ## Adversarial mining
//!
//! Pools default to [`mining::PoolBehavior::Honest`] (all-honest
//! campaigns are bit-identical to the pre-behavior engine — the golden
//! fingerprints pin that). Switching a pool to
//! [`mining::PoolBehavior::Selfish`] arms the uncle-aware selfish-mining
//! state machine: blocks are withheld on a private branch and released
//! at fork-choice time (match/override/tie), with abandoned blocks
//! published as uncle bait. [`core::experiments::selfish_threshold`]
//! reproduces the α × γ profitability-threshold surface at chain-only
//! scale, and [`core::experiments::selfish_sim_grid`] runs the attack
//! inside the full network simulation, where the tie-win fraction γ
//! emerges from gateway placement:
//!
//! ```
//! use ethmeter::mining::{PoolDirectory, SelfishConfig};
//! use ethmeter::prelude::*;
//!
//! let scenario = Scenario::builder()
//!     .preset(Preset::Tiny)
//!     .duration(SimDuration::from_mins(10))
//!     .pools(PoolDirectory::attacker_vs_honest(0.4, 4, SelfishConfig::classic()))
//!     .build();
//! let outcome = run_campaign(&scenario);
//! assert!(outcome.stats.blocks_withheld > 0);
//! let revenue = ethmeter::analysis::rewards::analyze(&outcome.campaign);
//! println!("{revenue}"); // per-pool revenue share vs hash share
//! ```
//!
//! See `examples/` (notably `examples/grid_report.rs` and
//! `examples/selfish_pools.rs`) for end-to-end walkthroughs and
//! `EXPERIMENTS.md` for paper-vs-measured comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ethmeter_core::*;
