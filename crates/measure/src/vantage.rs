//! Vantage-point configuration (the paper's Table I).

use ethmeter_types::Region;

/// One measurement deployment site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VantagePoint {
    /// Short label used in reports ("NA", "EA", ...).
    pub name: String,
    /// Where the machine sits.
    pub region: Region,
    /// Peer target. The paper's main campaign ran "unlimited"; we model
    /// that as a large target (bounded by network size).
    pub peer_target: usize,
    /// True for the complementary observer that keeps Geth's default 25
    /// peers (used for Table II's redundancy numbers).
    pub default_peers: bool,
}

impl VantagePoint {
    /// The paper's four main measurement nodes (NA, EA, WE, CE), connected
    /// to "more than 100 peers at any moment".
    pub fn paper_main() -> Vec<VantagePoint> {
        Region::VANTAGE
            .iter()
            .map(|&region| VantagePoint {
                name: region.abbrev().to_owned(),
                region,
                peer_target: 400,
                default_peers: false,
            })
            .collect()
    }

    /// The complementary WE observer with Geth's default 25 peers
    /// (May 2–9 in the paper), whose logs feed Table II.
    pub fn paper_redundancy() -> VantagePoint {
        VantagePoint {
            name: "WE-default".to_owned(),
            region: Region::WesternEurope,
            peer_target: 25,
            default_peers: true,
        }
    }

    /// Main campaign plus the redundancy observer.
    pub fn paper_all() -> Vec<VantagePoint> {
        let mut v = Self::paper_main();
        v.push(Self::paper_redundancy());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_main_covers_four_regions() {
        let v = VantagePoint::paper_main();
        assert_eq!(v.len(), 4);
        let names: Vec<&str> = v.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["NA", "EA", "WE", "CE"]);
        assert!(v.iter().all(|p| p.peer_target > 100));
        assert!(v.iter().all(|p| !p.default_peers));
    }

    #[test]
    fn redundancy_observer_uses_default_peers() {
        let p = VantagePoint::paper_redundancy();
        assert_eq!(p.peer_target, 25);
        assert!(p.default_peers);
        assert_eq!(p.region, Region::WesternEurope);
    }

    #[test]
    fn paper_all_is_five() {
        assert_eq!(VantagePoint::paper_all().len(), 5);
    }
}
