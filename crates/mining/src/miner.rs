//! The PoW race and per-block strategy decisions.
//!
//! Proof-of-work is memoryless: with network inter-block time `T` and pool
//! share `s`, the pool's next block arrives after `Exp(mean = T / s)`
//! regardless of history. The driver keeps one pending "solve" event per
//! pool and re-draws it whenever the pool's mining target changes (the
//! memorylessness makes the re-draw statistically exact).

use ethmeter_sim::dist::Exp;
use ethmeter_sim::Xoshiro256;
use ethmeter_types::SimDuration;

use crate::pool::PoolConfig;

/// Draws the delay until a pool's next block solve.
///
/// # Panics
///
/// Panics if `share` or `interblock` is not positive and finite.
pub fn next_block_delay(share: f64, interblock: SimDuration, rng: &mut Xoshiro256) -> SimDuration {
    assert!(
        share > 0.0 && share.is_finite(),
        "share must be positive, got {share}"
    );
    assert!(!interblock.is_zero(), "inter-block time must be positive");
    let mean = interblock.as_secs_f64() / share;
    Exp::with_mean(mean).sample_duration(rng)
}

/// The strategy decisions made at the moment a pool wins a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPlan {
    /// Mine this block without transactions.
    pub empty: bool,
    /// Keep mining at the same height afterwards (one-miner fork attempt).
    pub attempt_duplicate: bool,
    /// If a duplicate is produced, reuse the original transaction set.
    pub duplicate_same_txs: bool,
    /// Number of *extra* same-height blocks released at once due to a pool
    /// malfunction (0 normally; 3..=6 models the observed 4- and
    /// 7-tuples).
    pub malfunction_extra: usize,
}

impl BlockPlan {
    /// Rolls the dice for one won block under the pool's strategy.
    pub fn decide(pool: &PoolConfig, rng: &mut Xoshiro256) -> BlockPlan {
        let s = &pool.strategy;
        let malfunction = s.malfunction_prob > 0.0 && rng.chance(s.malfunction_prob);
        BlockPlan {
            empty: rng.chance(s.empty_block_prob),
            attempt_duplicate: rng.chance(s.duplicate_prob),
            duplicate_same_txs: rng.chance(s.duplicate_same_txset_prob),
            malfunction_extra: if malfunction {
                3 + rng.index(4) // 3..=6 extras -> tuples of 4..=7
            } else {
                0
            },
        }
    }

    /// Rolls whether a completed duplicate is followed by another attempt
    /// (producing triples).
    pub fn continue_duplicating(pool: &PoolConfig, rng: &mut Xoshiro256) -> bool {
        rng.chance(pool.strategy.duplicate_again_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolDirectory;
    use crate::strategy::Strategy;
    use ethmeter_types::PoolId;

    #[test]
    fn delay_mean_scales_inversely_with_share() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let interblock = SimDuration::from_secs_f64(13.3);
        let n = 50_000;
        let mean_small: f64 = (0..n)
            .map(|_| next_block_delay(0.25, interblock, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        // Mean should be ~ 13.3 / 0.25 = 53.2 s.
        assert!((mean_small - 53.2).abs() < 1.5, "mean {mean_small}");
        let mean_big: f64 = (0..n)
            .map(|_| next_block_delay(1.0, interblock, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean_big - 13.3).abs() < 0.4, "mean {mean_big}");
    }

    #[test]
    fn honest_plan_never_misbehaves() {
        let d = PoolDirectory::uniform(2, 1);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..1000 {
            let plan = BlockPlan::decide(d.pool(PoolId(0)), &mut rng);
            assert!(!plan.empty);
            assert!(!plan.attempt_duplicate);
            assert_eq!(plan.malfunction_extra, 0);
        }
    }

    #[test]
    fn plan_frequencies_match_strategy() {
        let mut d = PoolDirectory::uniform(1, 1);
        d.pool_mut(PoolId(0)).strategy = Strategy::honest()
            .with_empty_prob(0.25)
            .with_duplicate_prob(0.1);
        let mut rng = Xoshiro256::seed_from_u64(8);
        let n = 100_000;
        let mut empties = 0;
        let mut dups = 0;
        for _ in 0..n {
            let plan = BlockPlan::decide(d.pool(PoolId(0)), &mut rng);
            if plan.empty {
                empties += 1;
            }
            if plan.attempt_duplicate {
                dups += 1;
            }
        }
        let fe = empties as f64 / n as f64;
        let fd = dups as f64 / n as f64;
        assert!((fe - 0.25).abs() < 0.01, "empty rate {fe}");
        assert!((fd - 0.10).abs() < 0.005, "dup rate {fd}");
    }

    #[test]
    fn malfunction_sizes_in_observed_range() {
        let mut d = PoolDirectory::uniform(1, 1);
        d.pool_mut(PoolId(0)).strategy = Strategy::honest().with_malfunction_prob(1.0);
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..1000 {
            let plan = BlockPlan::decide(d.pool(PoolId(0)), &mut rng);
            // Extras of 3..=6 -> tuples of size 4..=7, matching §III-C5's
            // observed 4-tuple and 7-tuple.
            assert!((3..=6).contains(&plan.malfunction_extra));
        }
    }
}
