//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! renames this crate to `proptest` (see the root `[workspace.dependencies]`)
//! and the property tests compile unchanged. The shim implements exactly
//! the API surface the workspace uses:
//!
//! - [`Strategy`] with [`Strategy::prop_map`] over numeric [ranges], tuples
//!   (arity 2–6), and [`collection::vec`];
//! - the [`proptest!`] macro, running each property over a deterministic,
//!   per-test-seeded stream of cases;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the case index so it can be replayed (cases are deterministic per
//! test name). The case count defaults to 48, is raised to 256 by the
//! consuming crate's `slow-tests` feature, and can be overridden at run
//! time with `PROPTEST_CASES=n`.
//!
//! [`proptest`]: https://docs.rs/proptest
//! [ranges]: std::ops::Range

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The deterministic PRNG driving case generation (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream depends only on `name` — each
    /// property gets its own reproducible case sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values for one property-test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// A strategy producing `Vec`s with lengths drawn from `len` and
    /// elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The per-property case count: `PROPTEST_CASES` wins, then the given
/// feature-dependent default (see the [`proptest!`] expansion).
pub fn cases(default: u32) -> u32 {
    // detlint::allow(entropy, reason = "test-harness knob read once at suite start to scale case counts; property seeds stay fixed, so default runs are unaffected")
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(default),
        Err(_) => default,
    }
}

/// Names the failing case when a property body panics, since the plain
/// assertion message carries no replay information.
#[derive(Debug)]
pub struct CaseGuard {
    property: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for one case of `property`.
    pub fn new(property: &'static str, case: u32) -> Self {
        CaseGuard {
            property,
            case,
            armed: true,
        }
    }

    /// Disarms the guard: the case completed without panicking.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: property `{}` failed on case {} (cases are \
                 deterministic per test name; re-run reaches the same case)",
                self.property, self.case
            );
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares deterministic property tests (shim for `proptest::proptest!`).
///
/// Each function body runs once per generated case; failures panic with
/// the case index (cases are reproducible per test name).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::cases(if cfg!(feature = "slow-tests") { 256 } else { 48 });
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..cases {
                let guard = $crate::CaseGuard::new(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
                guard.disarm();
            }
        }
    )*};
}

/// Shim for `prop_assert!` (no shrinking: plain assertion).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim for `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim for `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::collection;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::deterministic("vec_and_map_compose");
        let strat = collection::vec((0u8..4, 1u64..9).prop_map(|(a, b)| u64::from(a) + b), 2..6);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x <= 11));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 1u64..100, v in collection::vec(0u32..5, 0..10)) {
            prop_assert!(x >= 1);
            prop_assert_ne!(x, 0);
            prop_assert_eq!(v.iter().filter(|&&e| e < 5).count(), v.len());
        }

        #[test]
        #[should_panic]
        fn failing_properties_panic(x in 0u64..10) {
            // Also exercises the CaseGuard drop path, which names the
            // failing case on stderr.
            prop_assert!(x > 100);
        }
    }
}
