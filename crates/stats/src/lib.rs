//! Statistics toolkit for the measurement pipeline.
//!
//! The paper's processing stage (pandas/NumPy in the original) reduces raw
//! logs to summary statistics, histograms (Figure 1), empirical CDFs
//! (Figures 4, 5, 7), and run-length/censorship analysis (§III-D). This
//! crate implements those reductions:
//!
//! - [`summary::Summary`]: count/mean/std/quantiles of a sample;
//! - [`histogram::Histogram`]: fixed-width binning with PDF normalization;
//! - [`cdf::Cdf`]: empirical CDF with quantile and fraction-below queries;
//! - [`runs`]: run-length extraction and the exact/approximate theory of
//!   longest same-miner block sequences;
//! - [`table`]: plain-text table rendering for paper-style reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod histogram;
pub mod runs;
pub mod summary;
pub mod table;

pub use cdf::Cdf;
pub use histogram::Histogram;
pub use summary::Summary;
pub use table::Table;
