//! Out-of-core measurement equivalence.
//!
//! The columnar spill backend is a *capacity* feature, not a behavior
//! change: a campaign whose observer logs overflow to on-disk segments
//! must produce bit-identical exports, fingerprints, and reports to the
//! all-in-memory run. These suites pin that equivalence across seeds,
//! budgets (down to a pathological 1-byte budget that spills every
//! append), shard counts, and the report families that consume the logs
//! through the streaming scan API.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

use ethmeter::analysis::propagation;
use ethmeter::prelude::*;
use proptest::prelude::*;

mod common;
use common::digest;

/// A scratch spill directory under the system temp dir, unique per tag so
/// concurrent test binaries never collide. Segments unlink themselves on
/// drop; the directory itself is left behind (empty) and reused.
fn spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ethmeter-spill-equiv-{tag}"));
    std::fs::create_dir_all(&dir).expect("create spill dir");
    dir
}

fn scenario(preset: Preset, seed: u64, mins: u64) -> Scenario {
    Scenario::builder()
        .preset(preset)
        .seed(seed)
        .duration(SimDuration::from_mins(mins))
        .build()
}

fn spilled(
    preset: Preset,
    seed: u64,
    mins: u64,
    tag: &str,
    budget: usize,
    shards: usize,
) -> Scenario {
    Scenario::builder()
        .preset(preset)
        .seed(seed)
        .duration(SimDuration::from_mins(mins))
        .spill_dir(spill_dir(tag))
        .measure_budget(budget)
        .shards(shards)
        .build()
}

/// In-memory reference fingerprints, computed once per (preset, seed)
/// across all property cases (the spilled run under test is recomputed
/// every case).
fn reference_fingerprint(preset: Preset, seed: u64, mins: u64) -> u64 {
    type FpCache = HashMap<(u8, u64, u64), u64>;
    static CACHE: Mutex<Option<FpCache>> = Mutex::new(None);
    let key = (preset as u8, seed, mins);
    let mut guard = CACHE.lock().expect("cache lock");
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(&fp) = cache.get(&key) {
        return fp;
    }
    let fp = run_campaign(&scenario(preset, seed, mins))
        .campaign
        .fingerprint();
    cache.insert(key, fp);
    fp
}

proptest! {
    /// Over seed × preset × budget, the spilled campaign fingerprint
    /// equals the in-memory fingerprint — the CSV export (and hence
    /// every digest of it) cannot tell the backends apart.
    #[test]
    fn spilled_fingerprint_matches_in_memory(pick in (0u64..4, 0usize..4, 0usize..4)) {
        let (seed_ix, preset_ix, budget_ix) = pick;
        let seed = [11, 23, 47, 91][seed_ix as usize];
        // Tiny-biased so the common case stays fast; the Small arm keeps
        // the larger-topology layout honest (more vantages, more pools).
        let (preset, mins) = [
            (Preset::Tiny, 2),
            (Preset::Tiny, 2),
            (Preset::Tiny, 3),
            (Preset::Small, 1),
        ][preset_ix];
        // 1 B forces a segment per flush-sized batch; the larger budgets
        // exercise partial spill and the never-spills regime.
        let budget = [1, 1 << 12, 1 << 16, 64 << 20][budget_ix];
        let spilled = run_campaign(&spilled(preset, seed, mins, "prop", budget, 1))
            .campaign
            .fingerprint();
        prop_assert_eq!(spilled, reference_fingerprint(preset, seed, mins));
    }
}

#[test]
fn spilled_sharded_campaign_matches_the_pinned_golden() {
    // The strongest cross-check available: spill + sharding together must
    // land on the digest pinned from the seed implementation, at every
    // shard count and under a budget small enough that segments are
    // guaranteed on disk.
    for shards in [1, 2, 4, 8] {
        let s = spilled(Preset::Tiny, 101, 5, "golden", 1 << 12, shards);
        let got = run_campaign(&s).campaign.fingerprint();
        assert_eq!(
            got,
            digest("tiny-101"),
            "spilled tiny-101 at {shards} shards diverged from the pinned golden"
        );
    }
}

#[test]
fn spilled_logs_actually_spill_and_clean_up() {
    let dir = spill_dir("observe");
    let s = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(101)
        .duration(SimDuration::from_mins(2))
        .spill_dir(dir.clone())
        .measure_budget(1 << 12)
        .build();
    let outcome = run_campaign(&s);
    let spilled_segments: usize = outcome
        .campaign
        .observers
        .iter()
        .map(|(_, log)| log.spilled_segments())
        .sum();
    assert!(
        spilled_segments > 0,
        "a 4 KiB campaign-wide budget must push segments to disk"
    );
    drop(outcome);
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("spill dir readable")
        .filter_map(Result::ok)
        .map(|e| e.file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "dropping the campaign must unlink every segment, found {leftovers:?}"
    );
}

#[test]
fn propagation_sketch_is_shard_count_invariant() {
    // Part of the merge-stability contract: the quantile sketch embedded
    // in the propagation report is *bit-identical* at every shard count,
    // not merely within error bounds.
    let reference = propagation::analyze(&run_campaign(&scenario(Preset::Tiny, 101, 5)).campaign);
    assert!(reference.sketch.count() > 0, "campaign must measure delays");
    for shards in [2, 4, 8] {
        let s = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(101)
            .duration(SimDuration::from_mins(5))
            .shards(shards)
            .build();
        let report = propagation::analyze(&run_campaign(&s).campaign);
        assert_eq!(
            report.sketch, reference.sketch,
            "sketch diverged at {shards} shards"
        );
        assert_eq!(report, reference, "report diverged at {shards} shards");
    }
}

#[test]
fn reports_from_spilled_logs_match_in_memory_reports() {
    // Fingerprint equality covers the raw exports; this covers the
    // analysis layer's streaming consumption (group-scan join) end to
    // end for the four rewired families.
    let mem = run_campaign(&scenario(Preset::Tiny, 101, 5)).campaign;
    let spill = run_campaign(&spilled(Preset::Tiny, 101, 5, "reports", 1 << 12, 1)).campaign;
    assert_eq!(
        propagation::analyze(&mem),
        propagation::analyze(&spill),
        "propagation diverged"
    );
    assert_eq!(
        ethmeter::analysis::first_observation::geo(&mem),
        ethmeter::analysis::first_observation::geo(&spill),
        "first observation (geo) diverged"
    );
    assert_eq!(
        ethmeter::analysis::first_observation::by_pool(&mem, 10),
        ethmeter::analysis::first_observation::by_pool(&spill, 10),
        "first observation (pool) diverged"
    );
    assert_eq!(
        ethmeter::analysis::commit::analyze(&mem),
        ethmeter::analysis::commit::analyze(&spill),
        "commit diverged"
    );
    assert_eq!(
        ethmeter::analysis::redundancy::analyze(&mem),
        ethmeter::analysis::redundancy::analyze(&spill),
        "redundancy diverged"
    );
    assert_eq!(
        ethmeter::analysis::decentralization::analyze(&mem),
        ethmeter::analysis::decentralization::analyze(&spill),
        "decentralization diverged"
    );
}
