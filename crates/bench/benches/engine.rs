//! Simulator-throughput benchmarks: campaign execution, chain-only
//! sequence generation (Figure 7 / §III-D's substrate), and the exact
//! run-length theory.

use criterion::{criterion_group, criterion_main, Criterion};
use ethmeter_core::chainonly::{run_chain_only, ChainOnlyConfig};
use ethmeter_core::{run_campaign, Preset, Scenario};
use ethmeter_stats::runs::{expected_maximal_runs, prob_run_at_least};
use ethmeter_types::SimDuration;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);

    // A 3-simulated-minute micro-campaign: measures end-to-end event
    // throughput (topology build + gossip + mining + analysis handoff).
    let micro = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(7)
        .duration(SimDuration::from_mins(3))
        .build();
    g.bench_function("campaign_3min_60nodes", |b| {
        b.iter(|| black_box(run_campaign(&micro)))
    });

    // Figure 7's substrate: a paper-month of block winners.
    let month = ChainOnlyConfig::paper_month(1);
    g.bench_function("chain_only_201k_blocks", |b| {
        b.iter(|| black_box(run_chain_only(&month)))
    });

    // §III-D exact theory at paper scale.
    g.bench_function("prob_run_at_least_201k", |b| {
        b.iter(|| black_box(prob_run_at_least(201_086, 0.259, 12)))
    });
    g.bench_function("expected_maximal_runs", |b| {
        b.iter(|| black_box(expected_maximal_runs(201_086, 0.259, 8)))
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
