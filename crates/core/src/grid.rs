//! Multi-axis campaign grids with streaming result collection.
//!
//! A [`Grid`] is the declarative form of "run this scenario under every
//! combination of these parameters, across these seeds": named axes over
//! scenario parameters (tx rate, inter-block time, pool directory, net
//! config, …) crossed with a seed axis, executed on parallel workers, and
//! reduced through a caller-chosen [`Metric`]. Memory is bounded by the
//! metric, not the grid — with streaming collectors a thousand-run grid
//! peaks at roughly one campaign's footprint per worker.
//!
//! # Determinism
//!
//! Each job runs an independent campaign (bit-identical to a sequential
//! [`run_campaign`] of the same materialized scenario), each job's metric
//! clone observes exactly one outcome, and the per-job instances fold in
//! grid order. Results are therefore identical across `threads(1)`,
//! `threads(N)`, and the legacy sequential path — pinned by
//! `tests/sweep.rs`.
//!
//! # Example
//!
//! ```
//! use ethmeter_core::prelude::*;
//!
//! let base = Scenario::builder()
//!     .preset(Preset::Tiny)
//!     .duration(SimDuration::from_mins(2))
//!     .build();
//! let outcome = Grid::new(base)
//!     .seed_range(1, 2)
//!     .axis("interblock_s", [10.0, 20.0], |s, &secs| {
//!         s.interblock = SimDuration::from_secs_f64(secs);
//!     })
//!     .threads(2)
//!     .run(Scalars::new().column("head", |_, o| {
//!         o.campaign.truth.tree.head_number() as f64
//!     }));
//! assert_eq!(outcome.jobs, 4);
//! assert_eq!(outcome.output.rows.len(), 2); // one row per grid point
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use crate::metric::{Metric, RunCtx};
use crate::par::panic_text;
use crate::runner::{run_campaign, CampaignRunner};
use crate::scenario::Scenario;
use crate::world::RunStats;

/// A boxed scenario transform: one [`Grid::axis_with`] point's setter.
pub type AxisSetter = Box<dyn Fn(&mut Scenario) + Send + Sync>;

/// One named axis: a list of `(value label, scenario setter)` points.
struct Axis {
    name: String,
    points: Vec<(String, AxisSetter)>,
}

/// The structured coordinates of one scenario-axis grid point: one
/// `(axis name, value label)` pair per declared axis, in axis order.
///
/// The seed is *not* part of the point — cross-seed aggregation groups by
/// point, so every seed of one configuration shares one `GridPoint`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct GridPoint {
    coords: Vec<(String, String)>,
}

impl GridPoint {
    /// Builds a point from explicit `(axis, value)` coordinates — useful
    /// as a lookup key into a
    /// [`GridReport`](crate::report::GridReport::row).
    pub fn from_coords<A, V, I>(coords: I) -> Self
    where
        A: Into<String>,
        V: Into<String>,
        I: IntoIterator<Item = (A, V)>,
    {
        GridPoint {
            coords: coords
                .into_iter()
                .map(|(a, v)| (a.into(), v.into()))
                .collect(),
        }
    }

    /// The `(axis, value)` coordinates, in axis declaration order.
    pub fn coords(&self) -> &[(String, String)] {
        &self.coords
    }

    /// The value label of one axis, if the axis exists.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.coords
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
    }

    /// True for the unique point of an axis-less grid.
    pub fn is_base(&self) -> bool {
        self.coords.is_empty()
    }
}

impl fmt::Display for GridPoint {
    /// `axis=value,axis=value` (or `base` for the axis-less point).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coords.is_empty() {
            return write!(f, "base");
        }
        for (i, (axis, value)) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{axis}={value}")?;
        }
        Ok(())
    }
}

/// A multi-axis campaign grid. Built fluently from a base [`Scenario`];
/// [`Grid::run`] executes the full cartesian product and reduces it
/// through a [`Metric`].
pub struct Grid {
    base: Scenario,
    seeds: Vec<u64>,
    axes: Vec<Axis>,
    threads: usize,
    reuse_workers: bool,
}

impl Grid {
    /// Starts a grid over `base`. With no further configuration the grid
    /// runs the base scenario's own seed once.
    pub fn new(base: Scenario) -> Self {
        Grid {
            base,
            seeds: Vec::new(),
            axes: Vec::new(),
            threads: 0,
            reuse_workers: true,
        }
    }

    /// Sets the seed axis explicitly.
    #[must_use]
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the seed axis to `first, first+1, ..., first+count-1`.
    #[must_use]
    pub fn seed_range(self, first: u64, count: usize) -> Self {
        self.seeds((0..count as u64).map(|i| first + i))
    }

    /// Caps the worker threads. `0` (the default) means one worker per
    /// available CPU; the effective count never exceeds the job count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Controls per-worker world reuse (default `true`). With `false`
    /// every job constructs its world from scratch, exactly like calling
    /// [`run_campaign`] in a loop. Results are bit-identical either way.
    #[must_use]
    pub fn reuse_workers(mut self, reuse: bool) -> Self {
        self.reuse_workers = reuse;
        self
    }

    /// Declares a named scenario axis: each value in `values` becomes one
    /// point, labeled by its `Display` form, applied to the scenario by
    /// `setter`. Axes multiply (full cartesian product), with earlier
    /// axes varying slowest and the seed axis innermost.
    ///
    /// ```
    /// # use ethmeter_core::prelude::*;
    /// # let base = Scenario::builder().preset(Preset::Tiny).build();
    /// let grid = Grid::new(base)
    ///     .axis("tx_rate", [0.5, 1.0, 2.0], |s, &rate| s.set_tx_rate(rate));
    /// assert_eq!(grid.job_count(), 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty — an empty axis would silently reduce
    /// the whole cartesian product to zero jobs.
    #[must_use]
    pub fn axis<T, I, F>(self, name: impl Into<String>, values: I, setter: F) -> Self
    where
        T: fmt::Display + Send + Sync + 'static,
        I: IntoIterator<Item = T>,
        F: Fn(&mut Scenario, &T) + Send + Sync + 'static,
    {
        let setter = Arc::new(setter);
        let points = values
            .into_iter()
            .map(|value| {
                let label = value.to_string();
                let setter = Arc::clone(&setter);
                let f: AxisSetter = Box::new(move |s: &mut Scenario| setter(s, &value));
                (label, f)
            })
            .collect();
        self.push_axis(name.into(), points)
    }

    /// Declares an axis from pre-labeled `(label, transform)` points —
    /// the escape hatch for axes whose values aren't `Display`able (whole
    /// pool directories, net configs) or whose transforms differ per
    /// point. `Sweep`'s variant axis lowers to this.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty (see [`Grid::axis`]).
    #[must_use]
    pub fn axis_with(self, name: impl Into<String>, points: Vec<(String, AxisSetter)>) -> Self {
        self.push_axis(name.into(), points)
    }

    fn push_axis(mut self, name: String, points: Vec<(String, AxisSetter)>) -> Self {
        assert!(
            !points.is_empty(),
            "grid axis '{name}' needs at least one value"
        );
        self.axes.push(Axis { name, points });
        self
    }

    /// The seeds the grid will run (the base scenario's own seed when no
    /// seed axis was declared).
    fn effective_seeds(&self) -> Vec<u64> {
        if self.seeds.is_empty() {
            vec![self.base.seed]
        } else {
            self.seeds.clone()
        }
    }

    /// The number of scenario-axis points (1 for an axis-less grid).
    pub fn point_count(&self) -> usize {
        // Axes are never empty (push_axis rejects that), so the product
        // is the exact cartesian size.
        self.axes.iter().map(|a| a.points.len()).product()
    }

    /// The number of campaigns [`Grid::run`] will execute.
    pub fn job_count(&self) -> usize {
        self.point_count() * self.seeds.len().max(1)
    }

    /// Materializes the structured tags of every grid point, in point
    /// order (earlier axes vary slowest).
    pub fn points(&self) -> Vec<GridPoint> {
        let mut out = Vec::with_capacity(self.point_count());
        for p in 0..self.point_count() {
            out.push(GridPoint {
                coords: self
                    .decompose(p)
                    .map(|(axis, i)| (axis.name.clone(), axis.points[i].0.clone()))
                    .collect(),
            });
        }
        out
    }

    /// Iterates `(axis, point index within axis)` for flat point index
    /// `p`, earlier axes varying slowest.
    fn decompose(&self, mut p: usize) -> impl Iterator<Item = (&Axis, usize)> {
        let mut indices = vec![0usize; self.axes.len()];
        for (slot, axis) in indices.iter_mut().zip(self.axes.iter()).rev() {
            let len = axis.points.len();
            *slot = p % len;
            p /= len;
        }
        self.axes.iter().zip(indices)
    }

    /// Builds the concrete scenario of one job.
    fn materialize(&self, point_index: usize, seed: u64) -> Scenario {
        let mut scenario = self.base.clone();
        for (axis, i) in self.decompose(point_index) {
            let (_, setter) = &axis.points[i];
            setter(&mut scenario);
        }
        scenario.seed = seed;
        scenario
    }

    /// Runs the whole grid, reducing every outcome through `metric`.
    ///
    /// Jobs are distributed over the workers by an atomic counter; the
    /// per-job metric instances (and stats totals) are folded in grid
    /// order afterwards, so the output is independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked, *after* every worker has drained the
    /// job queue and exited cleanly — no hung siblings, no poisoned
    /// joins. The re-raised message carries each failed job's grid
    /// coordinates and seed, in grid order:
    /// `[tx_rate=2.0 seed=7] <original panic message>`.
    pub fn run<M: Metric + Clone>(&self, metric: M) -> GridOutcome<M::Output> {
        let seeds = self.effective_seeds();
        let points = self.points();
        let jobs = points.len() * seeds.len();
        let threads = self.effective_threads(jobs);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<(M, RunStats, u64)>> = (0..jobs).map(|_| None).collect();
        // `(job index, grid point, seed, panic message)` per failed job.
        let panics: Mutex<Vec<(usize, String, u64, String)>> = Mutex::new(Vec::new());
        thread::scope(|scope| {
            let seeds = &seeds;
            let points = &points;
            let next = &next;
            let panics = &panics;
            // Each worker owns a copy of the prototype to clone per job,
            // so `M` only needs `Send`, not `Sync`.
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let proto = metric.clone();
                    scope.spawn(move || {
                        // One reusable world+engine per worker thread (the
                        // CampaignRunner contract keeps outcomes identical
                        // to fresh construction).
                        let mut runner = self.reuse_workers.then(CampaignRunner::new);
                        let mut mine = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= jobs {
                                break;
                            }
                            let point_index = index / seeds.len();
                            let seed_index = index % seeds.len();
                            let seed = seeds[seed_index];
                            // A panicking job (world bug, metric bug, bad
                            // scenario point) must not take the worker —
                            // and with it every job it would have claimed —
                            // down with it: record it with its grid
                            // context and move on to the next job.
                            let job =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let scenario = self.materialize(point_index, seed);
                                    let outcome = match runner.as_mut() {
                                        Some(r) => r.run(&scenario),
                                        None => run_campaign(&scenario),
                                    };
                                    let mut m = proto.clone();
                                    let (stats, events) = (outcome.stats, outcome.events);
                                    // Owned handoff: each job observes exactly
                                    // once, so retaining collectors can move the
                                    // dataset instead of cloning it.
                                    m.observe_owned(
                                        &RunCtx {
                                            index,
                                            point_index,
                                            seed_index,
                                            seed: scenario.seed,
                                            point: &points[point_index],
                                            scenario: &scenario,
                                        },
                                        outcome,
                                    );
                                    (m, stats, events)
                                }));
                            match job {
                                Ok((m, stats, events)) => mine.push((index, m, stats, events)),
                                Err(payload) => {
                                    panics.lock().unwrap_or_else(|e| e.into_inner()).push((
                                        index,
                                        points[point_index].to_string(),
                                        seed,
                                        panic_text(payload),
                                    ));
                                    // The engine/world may have unwound
                                    // mid-event; rebuild rather than reuse
                                    // a possibly inconsistent instance.
                                    runner = self.reuse_workers.then(CampaignRunner::new);
                                }
                            }
                        }
                        mine
                    })
                })
                .collect();
            for handle in handles {
                // Workers catch job panics themselves, so joins cannot
                // fail; `expect` guards the invariant.
                for (i, m, stats, events) in handle.join().expect("grid workers catch job panics") {
                    slots[i] = Some((m, stats, events));
                }
            }
        });

        let mut failed = panics.into_inner().unwrap_or_else(|e| e.into_inner());
        if !failed.is_empty() {
            failed.sort_by_key(|&(index, ..)| index);
            let detail: Vec<String> = failed
                .iter()
                .map(|(_, point, seed, msg)| format!("[{point} seed={seed}] {msg}"))
                .collect();
            panic!(
                "{} of {jobs} grid jobs panicked: {}",
                failed.len(),
                detail.join("; ")
            );
        }

        // Deterministic reduction: fold per-job instances in grid order.
        let mut totals = RunStats::default();
        let mut events = 0u64;
        let mut acc: Option<M> = None;
        for slot in slots {
            let (m, stats, ev) = slot.expect("no job panicked, so every slot is filled");
            totals.merge(&stats);
            events += ev;
            match acc.as_mut() {
                Some(a) => a.merge(m),
                None => acc = Some(m),
            }
        }
        GridOutcome {
            output: acc.expect("grids have at least one job").finish(),
            totals,
            events,
            threads_used: threads,
            jobs,
        }
    }

    fn effective_threads(&self, jobs: usize) -> usize {
        let auto = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let cap = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        cap.clamp(1, jobs.max(1))
    }
}

impl fmt::Debug for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grid")
            .field("seeds", &self.seeds)
            .field("threads", &self.threads)
            .field(
                "axes",
                &self
                    .axes
                    .iter()
                    .map(|a| (a.name.clone(), a.points.len()))
                    .collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

/// Everything a [`Grid::run`] produced.
#[derive(Debug)]
pub struct GridOutcome<T> {
    /// The finished metric output.
    pub output: T,
    /// Field-wise sum of every campaign's [`RunStats`].
    pub totals: RunStats,
    /// Total events processed across all campaigns.
    pub events: u64,
    /// Worker threads actually used.
    pub threads_used: usize,
    /// Campaigns executed.
    pub jobs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{RetainRuns, Scalars};
    use crate::scenario::Preset;
    use ethmeter_types::SimDuration;

    fn base() -> Scenario {
        Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_mins(2))
            .build()
    }

    #[test]
    fn cartesian_product_in_point_major_seed_minor_order() {
        let grid = Grid::new(base())
            .seeds([1, 2])
            .axis("a", [10u64, 20], |_, _| {})
            .axis("b", ["x", "y"], |_, _| {});
        assert_eq!(grid.point_count(), 4);
        assert_eq!(grid.job_count(), 8);
        let labels: Vec<String> = grid.points().iter().map(|p| p.to_string()).collect();
        assert_eq!(labels, vec!["a=10,b=x", "a=10,b=y", "a=20,b=x", "a=20,b=y"]);
        let out = grid.threads(2).run(RetainRuns::new());
        assert_eq!(out.jobs, 8);
        let tags: Vec<(u64, String)> = out
            .output
            .iter()
            .map(|r| (r.seed, r.point.to_string()))
            .collect();
        assert_eq!(tags[0], (1, "a=10,b=x".to_owned()));
        assert_eq!(tags[1], (2, "a=10,b=x".to_owned()));
        assert_eq!(tags[7], (2, "a=20,b=y".to_owned()));
        // Retained runs arrive in grid order with their job index.
        assert!(out.output.iter().enumerate().all(|(i, r)| r.index == i));
    }

    #[test]
    fn axis_setters_shape_the_scenario() {
        let out = Grid::new(base())
            .axis("interblock_s", [8.0, 20.0], |s, &secs| {
                s.interblock = SimDuration::from_secs_f64(secs);
            })
            .threads(2)
            .run(RetainRuns::new());
        let head = |i: usize| out.output[i].outcome.campaign.truth.tree.head_number();
        // Faster blocks -> longer chain for the same duration.
        assert!(head(0) > head(1), "{} vs {}", head(0), head(1));
    }

    #[test]
    fn axisless_grid_defaults_to_base_seed() {
        let scenario = base();
        let seed = scenario.seed;
        let out = Grid::new(scenario).threads(1).run(RetainRuns::new());
        assert_eq!(out.jobs, 1);
        assert_eq!(out.output[0].seed, seed);
        assert!(out.output[0].point.is_base());
        assert_eq!(out.threads_used, 1);
    }

    #[test]
    #[should_panic(expected = "axis 'tx_rate' needs at least one value")]
    fn empty_axis_rejected_at_declaration() {
        let no_rates: Vec<f64> = Vec::new();
        let _ = Grid::new(base()).axis("tx_rate", no_rates, |_, _| {});
    }

    #[test]
    fn grid_point_lookup() {
        let grid = Grid::new(base()).axis("rate", [1.5], |_, _| {});
        let points = grid.points();
        assert_eq!(points[0].get("rate"), Some("1.5"));
        assert_eq!(points[0].get("nope"), None);
        assert_eq!(points[0].coords().len(), 1);
    }

    #[test]
    fn job_panic_propagates_with_point_and_seed_context() {
        let base = Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_secs(30))
            .build();
        let result = std::panic::catch_unwind(|| {
            Grid::new(base)
                .seed_range(1, 3)
                .axis("interblock_s", [10.0], |s, &secs| {
                    s.interblock = SimDuration::from_secs_f64(secs);
                })
                .threads(2)
                .run(Scalars::new().column("boom", |ctx, _| {
                    assert!(ctx.seed != 2, "synthetic metric failure");
                    1.0
                }))
        });
        // The run terminates (workers drain the queue, no hung joins)
        // and the re-raised panic names the failing job.
        let msg = panic_text(result.expect_err("grid must re-raise the job panic"));
        assert!(msg.contains("1 of 3 grid jobs panicked"), "{msg}");
        assert!(msg.contains("[interblock_s=10 seed=2]"), "{msg}");
        assert!(msg.contains("synthetic metric failure"), "{msg}");
    }

    #[test]
    fn scalars_group_rows_per_point() {
        let out = Grid::new(base())
            .seeds([1, 2, 3])
            .axis("interblock_s", [10.0, 25.0], |s, &secs| {
                s.interblock = SimDuration::from_secs_f64(secs);
            })
            .threads(2)
            .run(Scalars::new().column("head", |_, o| o.campaign.truth.tree.head_number() as f64));
        let report = out.output;
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.cells[0].runs == 3));
        // Faster blocks -> higher mean head.
        assert!(report.rows[0].cells[0].mean > report.rows[1].cells[0].mean);
    }
}
