//! Simulated time.
//!
//! The simulator advances a virtual clock measured in integer nanoseconds
//! from the start of the experiment. Integer time keeps event ordering exact
//! and runs bit-reproducible (no floating-point drift), while one `u64`
//! comfortably covers ~584 years of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock (nanoseconds since experiment start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Converts a fractional nanosecond count to integer nanoseconds — the
/// single checked route for every `f64` → simulated-time conversion
/// ([`SimDuration::from_secs_f64`], [`SimDuration::from_millis_f64`],
/// [`SimDuration::mul_f64`], and through them the distribution samplers
/// and scheduler offsets).
///
/// Saturates instead of wrapping or panicking in release builds: NaN and
/// negative inputs clamp to zero, values beyond `u64::MAX` nanoseconds
/// (~584 years) clamp to the maximum — a defined, *ordered* result, so a
/// pathological latency or a near-zero arrival rate stalls an event at
/// the far horizon rather than aborting or time-travelling. Debug builds
/// assert first: reaching such a value means a model produced a
/// nonsensical duration, and the workspace test suite should see it.
#[inline]
fn saturating_nanos_from_f64(nanos: f64) -> u64 {
    debug_assert!(!nanos.is_nan(), "time conversion from NaN nanoseconds");
    debug_assert!(
        nanos.is_nan() || nanos >= 0.0,
        "time conversion from negative nanoseconds ({nanos}); durations must be non-negative"
    );
    debug_assert!(
        nanos < u64::MAX as f64,
        "time conversion of {nanos} ns overflows SimDuration"
    );
    if nanos.is_nan() || nanos < 0.0 {
        0
    } else if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos as u64
    }
}

impl SimTime {
    /// The experiment start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the start of the experiment.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since experiment start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since experiment start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Applies a signed clock offset (used to model NTP skew at observers),
    /// saturating at the representable range.
    #[inline]
    pub fn offset_by(self, offset_nanos: i64) -> SimTime {
        if offset_nanos >= 0 {
            SimTime(self.0.saturating_add(offset_nanos as u64))
        } else {
            SimTime(self.0.saturating_sub(offset_nanos.unsigned_abs()))
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * NANOS_PER_SEC)
    }

    /// Creates a duration from whole hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Routed through the workspace's one checked `f64` → nanoseconds
    /// conversion: NaN/negative inputs saturate to zero and oversized
    /// inputs to [`SimDuration::MAX`] in release builds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `secs` is negative, NaN, or too large
    /// to represent.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(saturating_nanos_from_f64(secs * NANOS_PER_SEC as f64))
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// Saturates (and debug-asserts) under the same conditions as
    /// [`SimDuration::from_secs_f64`].
    #[inline]
    pub fn from_millis_f64(millis: f64) -> Self {
        // Delegation (not `millis * 1e6` directly) keeps the rounding
        // sequence bit-identical to what the golden fingerprints were
        // captured with.
        Self::from_secs_f64(millis / 1e3)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Whole seconds (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative float (e.g. jitter factors),
    /// through the same checked conversion as
    /// [`SimDuration::from_secs_f64`]: the product saturates at
    /// [`SimDuration::MAX`] instead of silently `as`-casting.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or NaN, or if the
    /// scaled duration overflows.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration(saturating_nanos_from_f64(self.0 as f64 * factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    /// The instant `rhs` earlier than `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` exceeds the time since experiment
    /// start.
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is uncertain.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", self.0 as f64 / NANOS_PER_MICRO as f64)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
        assert_eq!(
            SimDuration::from_millis_f64(0.5),
            SimDuration::from_micros(500)
        );
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let u = t + SimDuration::from_millis(250);
        assert_eq!((u - t).as_millis(), 250);
        assert_eq!(u.saturating_since(t).as_millis(), 250);
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
        assert_eq!(u - SimDuration::from_millis(250), t);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(3) - SimDuration::from_secs(1);
        assert_eq!(d, SimDuration::from_secs(2));
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 2, SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(3));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn clock_offsets() {
        let t = SimTime::from_secs(100);
        assert_eq!(
            t.offset_by(1_000_000),
            SimTime::from_nanos(t.as_nanos() + 1_000_000)
        );
        assert_eq!(
            t.offset_by(-1_000_000),
            SimTime::from_nanos(t.as_nanos() - 1_000_000)
        );
        // Saturates at zero rather than wrapping.
        assert_eq!(SimTime::ZERO.offset_by(-5), SimTime::ZERO);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(15).to_string(), "15.000us");
        assert_eq!(SimDuration::from_millis(74).to_string(), "74.000ms");
        assert_eq!(SimDuration::from_secs(13).to_string(), "13.000s");
        assert_eq!(SimTime::from_secs(2).to_string(), "t+2.000s");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_float_duration_panics_in_debug() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_float_duration_panics_in_debug() {
        // ~1.8e19 ns is the ceiling; 1e12 s = 1e21 ns is far past it —
        // the kind of value an exponential sampler emits at a near-zero
        // rate.
        let _ = SimDuration::from_secs_f64(1e12);
    }

    // The saturating release-mode contract can only execute where the
    // debug asserts are compiled out.
    #[cfg(not(debug_assertions))]
    #[test]
    fn float_conversions_saturate_in_release() {
        assert_eq!(SimDuration::from_secs_f64(1e12), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(1e18), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(1e30),
            SimDuration::MAX,
            "mul_f64 overflow must clamp, not wrap"
        );
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(f64::NAN),
            SimDuration::ZERO
        );
    }

    #[test]
    fn extreme_in_range_conversions_are_exact() {
        // Sub-nanosecond values truncate to zero rather than wrapping.
        assert_eq!(SimDuration::from_secs_f64(1e-12), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(1e-9), SimDuration::ZERO);
        // Near the representable ceiling (but under it), the conversion
        // stays monotone and finite: ~1.84e10 s is ~584 years.
        let big = SimDuration::from_secs_f64(1.8e10);
        assert!(big < SimDuration::MAX);
        assert!(big > SimDuration::from_secs(17_000_000_000));
        // A century-scale mul_f64 stays in range and ordered.
        let scaled = SimDuration::from_hours(1).mul_f64(8.76e5);
        assert_eq!(scaled.as_secs(), 3_153_600_000);
    }

    #[test]
    fn max_is_usable_sentinel() {
        assert!(SimTime::from_secs(1_000_000) < SimTime::MAX);
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
    }
}
