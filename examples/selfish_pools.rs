//! Selfish mining-pool behavior (paper §III-C3/C5 and §V): empty blocks,
//! one-miner forks, and the proposed protocol mitigation.
//!
//! ```sh
//! cargo run --release --example selfish_pools
//! ```

use ethmeter::analysis::{empty_blocks, forks};
use ethmeter::chain::rewards::{uncle_reward, BLOCK_REWARD};
use ethmeter::experiments;
use ethmeter::prelude::*;

fn main() {
    let scenario = Scenario::builder()
        .preset(Preset::Small)
        .seed(99)
        .duration(SimDuration::from_hours(2))
        .build();
    let outcome = run_campaign(&scenario);
    let data = &outcome.campaign;

    // Figure 6: which pools mine empty blocks.
    println!("{}\n", empty_blocks::analyze(data, 15));

    // §III-C5: one-miner forks and Table III.
    println!("{}\n", forks::analyze(data));

    // Why duplicates pay: a gap-1 uncle earns 7/8 of a block reward.
    println!(
        "economics: base reward {} mETH; a gap-1 uncle pays {} mETH — {}% of a block\n",
        BLOCK_REWARD,
        uncle_reward(10, 9),
        100 * uncle_reward(10, 9) / BLOCK_REWARD
    );

    // §V mitigation ablation: forbid same-miner same-height uncles and the
    // duplicate-reward channel closes.
    let ablation_scenario = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(99)
        .duration(SimDuration::from_mins(30))
        .build();
    println!("{}", experiments::ablation_uncle_policy(&ablation_scenario));
}
