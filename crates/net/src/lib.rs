//! P2P overlay substrate: topology, peer state, and Geth-1.8 gossip.
//!
//! Implements the dissemination protocol of the client the paper
//! instrumented (Geth 1.8.23, devp2p `eth/63`):
//!
//! - blocks travel either as **direct pushes** (`NewBlock`, full body, sent
//!   to √(peers) immediately on reception, before full validation) or as
//!   **announcements** (`NewBlockHashes`, sent to the remaining peers after
//!   import), with per-peer known-sets suppressing duplicates — exactly the
//!   two message families of the paper's Table II;
//! - announced blocks are fetched (`GetBlock`/`BlockBody`) with timeouts
//!   and fallback to other announcers, mirroring Geth's fetcher;
//! - transactions relay to peers that don't know them, with a configurable
//!   fanout ([`config::TxRelayPolicy`]) for large-scale runs.
//!
//! Nodes are *decision machines*: each handler consumes a message and
//! appends the [`node::Send`]s it wants performed to a caller-owned
//! buffer (recycled by the driver, so the steady state allocates
//! nothing). Link latency, bandwidth serialization, and validation delays
//! are applied by the simulation driver (`ethmeter-core`), which keeps
//! this crate free of event-loop concerns and independently testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod headerview;
pub mod known;
pub mod message;
pub mod node;
pub mod shard;
pub mod topology;

pub use config::{NetConfig, TxRelayPolicy};
pub use headerview::HeaderView;
pub use known::KnownSet;
pub use message::{AnnounceList, Message, TxBatch};
pub use node::{ImportAction, LinkError, Node, Send};
pub use shard::{RemoteEvent, RemoteEventKind, ShardMap};
pub use topology::Topology;
