// Fixture: default-hasher maps on a sim-path crate (two violations).
use std::collections::{HashMap, HashSet};

struct Index {
    by_height: HashMap<u64, u32>,
}

fn build() -> Index {
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(1);
    Index {
        by_height: HashMap::new(),
    }
}
