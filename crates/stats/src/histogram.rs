//! Fixed-width histograms with PDF normalization (Figure 1 of the paper is
//! a PDF histogram of block propagation delays).

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width bins plus an overflow bin.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, the range is empty, or bounds are not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi})"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Floating-point edge: clamp to last in-range bin.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Records every value of an iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Folds another histogram into this one, bin by bin.
    ///
    /// Merging is exact — the result is identical to recording both
    /// histograms' inputs into one histogram, in any order — which is what
    /// lets per-run histograms stream out of a sweep worker and still
    /// aggregate deterministically regardless of merge-tree shape.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different ranges or bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram merge requires identical binning: [{}, {})x{} vs [{}, {})x{}",
            self.lo,
            self.hi,
            self.counts.len(),
            other.lo,
            other.hi,
            other.counts.len()
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.underflow += other.underflow;
        self.total += other.total;
    }

    /// Number of bins (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Raw count of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// The `[lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// The in-range probability mass of bin `i` (sums to ≤ 1 over bins;
    /// the remainder is under/overflow).
    pub fn pdf(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// `(bin center, probability mass)` series, ready for plotting.
    pub fn pdf_series(&self) -> Vec<(f64, f64)> {
        (0..self.bins())
            .map(|i| {
                let (a, b) = self.bin_edges(i);
                ((a + b) / 2.0, self.pdf(i))
            })
            .collect()
    }
}

impl fmt::Display for Histogram {
    /// Renders a compact horizontal bar chart (one row per bin).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for i in 0..self.bins() {
            let (a, b) = self.bin_edges(i);
            let width = (self.counts[i] * 40 / max) as usize;
            writeln!(
                f,
                "[{a:8.1}, {b:8.1})  {:6.2}% |{}",
                self.pdf(i) * 100.0,
                "#".repeat(width)
            )?;
        }
        if self.overflow > 0 {
            writeln!(
                f,
                ">= {:8.1}        {:6.2}% (overflow)",
                self.hi,
                self.overflow as f64 / self.total.max(1) as f64 * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all([0.0, 1.9, 2.0, 5.5, 9.999]);
        assert_eq!(h.count(0), 2); // [0,2)
        assert_eq!(h.count(1), 1); // [2,4)
        assert_eq!(h.count(2), 1); // [4,6)
        assert_eq!(h.count(4), 1); // [8,10)
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.5);
        h.record(1.0);
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn pdf_sums_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..1000 {
            h.record(i as f64 / 10.0); // all in [0, 100)
        }
        let sum: f64 = (0..h.bins()).map(|i| h.pdf(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_cover_range() {
        let h = Histogram::new(0.0, 500.0, 50);
        assert_eq!(h.bin_edges(0), (0.0, 10.0));
        assert_eq!(h.bin_edges(49), (490.0, 500.0));
        let series = h.pdf_series();
        assert_eq!(series.len(), 50);
        assert_eq!(series[0].0, 5.0);
    }

    #[test]
    fn display_is_nonempty() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(1.0);
        assert!(h.to_string().contains('%'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn merge_equals_recording_everything_once() {
        let values_a = [-1.0, 0.5, 3.3, 9.9, 12.0];
        let values_b = [0.5, 4.4, 7.7, 100.0];
        let mut merged = Histogram::new(0.0, 10.0, 5);
        merged.record_all(values_a);
        let mut other = Histogram::new(0.0, 10.0, 5);
        other.record_all(values_b);
        merged.merge(&other);
        let mut oneshot = Histogram::new(0.0, 10.0, 5);
        oneshot.record_all(values_a.into_iter().chain(values_b));
        assert_eq!(merged, oneshot);
    }

    #[test]
    #[should_panic(expected = "identical binning")]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 10);
        a.merge(&b);
    }
}
