//! Sweep-runner contracts: parallel fan-out must be a pure wall-clock
//! optimization — per-seed results bit-identical to sequential
//! `run_campaign`, independent of worker count — while distinct seeds
//! produce genuinely independent campaigns.

use ethmeter::measure::csv;
use ethmeter::prelude::*;

fn base() -> Scenario {
    Scenario::builder()
        .preset(Preset::Tiny)
        .duration(SimDuration::from_mins(3))
        .build()
}

const SEEDS: [u64; 8] = [201, 202, 203, 204, 205, 206, 207, 208];

#[test]
fn parallel_sweep_is_bit_identical_to_sequential_runs() {
    let sweep = Sweep::new(base()).seeds(SEEDS).threads(4).run();
    assert_eq!(sweep.runs.len(), SEEDS.len());
    assert!(sweep.threads_used >= 2, "sweep must actually run parallel");
    for (run, &seed) in sweep.runs.iter().zip(SEEDS.iter()) {
        assert_eq!(run.seed, seed);
        let mut scenario = base();
        scenario.seed = seed;
        let sequential = run_campaign(&scenario);
        assert_eq!(run.outcome.stats, sequential.stats, "seed {seed}");
        assert_eq!(run.outcome.events, sequential.events, "seed {seed}");
        let (pt, st) = (&run.outcome.campaign.truth, &sequential.campaign.truth);
        assert_eq!(pt.tree.head(), st.tree.head(), "seed {seed}");
        assert_eq!(pt.tree.len(), st.tree.len(), "seed {seed}");
        assert_eq!(pt.txs.len(), st.txs.len(), "seed {seed}");
        // Observer logs identical via their canonical CSV serialization.
        for (pa, pb) in run
            .outcome
            .campaign
            .observers
            .iter()
            .zip(sequential.campaign.observers.iter())
        {
            assert_eq!(pa.0.name, pb.0.name);
            assert_eq!(csv::blocks_to_csv(&pa.1), csv::blocks_to_csv(&pb.1));
            assert_eq!(csv::txs_to_csv(&pa.1), csv::txs_to_csv(&pb.1));
        }
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let one = Sweep::new(base()).seeds(SEEDS).threads(1).run();
    let many = Sweep::new(base()).seeds(SEEDS).threads(4).run();
    assert_eq!(one.heads(), many.heads());
    assert_eq!(one.totals, many.totals);
    assert_eq!(one.events, many.events);
}

#[test]
fn parallel_sweep_fingerprints_match_sequential() {
    // The strongest form of the cross-thread determinism contract: the
    // whole-dataset digest of every campaign in an 8-seed parallel sweep
    // equals the digest of the same scenario run sequentially. Any
    // cross-worker state leak (shared RNG, allocation-order dependence,
    // map-iteration nondeterminism) shows up here as a one-integer diff.
    let sweep = Sweep::new(base()).seeds(SEEDS).threads(4).run();
    assert!(sweep.threads_used >= 2, "sweep must actually run parallel");
    for (run, &seed) in sweep.runs.iter().zip(SEEDS.iter()) {
        let mut scenario = base();
        scenario.seed = seed;
        let sequential = run_campaign(&scenario);
        assert_eq!(
            run.outcome.campaign.fingerprint(),
            sequential.campaign.fingerprint(),
            "seed {seed}: parallel and sequential campaigns must be bit-identical"
        );
    }
}

#[test]
fn reused_worker_sweeps_equal_fresh_and_sequential() {
    // Sweep workers reuse one world+engine across their whole job stream
    // (the default); that reuse must be a pure wall-clock optimization.
    // Pin all three execution styles to the same campaign fingerprints:
    // reused workers, fresh-construction workers, and sequential runs.
    let reused = Sweep::new(base()).seeds(SEEDS).threads(2).run();
    let fresh = Sweep::new(base())
        .seeds(SEEDS)
        .threads(2)
        .reuse_workers(false)
        .run();
    assert_eq!(reused.totals, fresh.totals);
    assert_eq!(reused.events, fresh.events);
    for ((r, f), &seed) in reused.runs.iter().zip(fresh.runs.iter()).zip(SEEDS.iter()) {
        let fp_reused = r.outcome.campaign.fingerprint();
        assert_eq!(
            fp_reused,
            f.outcome.campaign.fingerprint(),
            "seed {seed}: reused-worker sweep diverged from fresh-construction sweep"
        );
        let mut scenario = base();
        scenario.seed = seed;
        assert_eq!(
            fp_reused,
            run_campaign(&scenario).campaign.fingerprint(),
            "seed {seed}: reused-worker sweep diverged from a sequential run"
        );
    }
}

#[test]
fn distinct_seeds_diverge() {
    let sweep = Sweep::new(base()).seeds(SEEDS).threads(4).run();
    assert_eq!(
        sweep.distinct_heads(),
        SEEDS.len(),
        "every seed must grow its own chain: {:?}",
        sweep.heads()
    );
}
