//! One entry point per table/figure — shared by the examples, the bench
//! harness, and the `repro` binary.

use std::fmt;

use ethmeter_analysis::commit::{CommitReport, OrderingReport};
use ethmeter_analysis::empty_blocks::EmptyBlockReport;
use ethmeter_analysis::first_observation::{GeoReport, PoolReport};
use ethmeter_analysis::forks::ForkReport;
use ethmeter_analysis::propagation::PropagationReport;
use ethmeter_analysis::redundancy::{RedundancyError, RedundancyReport};
use ethmeter_analysis::sequences::SequenceReport;
use ethmeter_analysis::{
    commit, empty_blocks, first_observation, forks, propagation, redundancy, sequences,
};
use ethmeter_chain::rewards::{uncle_reward, MilliEther};
use ethmeter_chain::uncles::UnclePolicy;
use ethmeter_measure::CampaignData;
use ethmeter_stats::table::{grouped, pct, Table};

use crate::chainonly::{run_chain_only, ChainOnlyConfig};
use crate::grid::Grid;
use crate::metric::Scalars;
use crate::report::GridReport;
use crate::runner::run_campaign;
use crate::scenario::Scenario;

/// Every campaign-derived report in one bundle.
#[derive(Debug)]
pub struct Suite {
    /// Figure 1.
    pub fig1: PropagationReport,
    /// Table II (absent when the campaign has no default-peers observer).
    pub table2: Result<RedundancyReport, RedundancyError>,
    /// Figure 2.
    pub fig2: GeoReport,
    /// Figure 3.
    pub fig3: PoolReport,
    /// Figure 4.
    pub fig4: CommitReport,
    /// Figure 5.
    pub fig5: OrderingReport,
    /// Figure 6.
    pub fig6: EmptyBlockReport,
    /// Table III + §III-C5.
    pub table3: ForkReport,
    /// Figure 7 over the campaign's own (short) chain.
    pub fig7: SequenceReport,
}

impl Suite {
    /// Runs every analyzer over one campaign.
    pub fn from_campaign(data: &CampaignData) -> Suite {
        Suite {
            fig1: propagation::analyze(data),
            table2: redundancy::analyze(data),
            fig2: first_observation::geo(data),
            fig3: first_observation::by_pool(data, 15),
            fig4: commit::analyze(data),
            fig5: commit::ordering(data),
            fig6: empty_blocks::analyze(data, 15),
            table3: forks::analyze(data),
            fig7: sequences::analyze(data),
        }
    }
}

/// The standard headline-statistics probe set for cross-seed grids: one
/// column per figure family, each a per-run scalar that the grid
/// aggregates into mean ± stddev (and percentile-of-percentiles spread)
/// per grid point.
///
/// Columns: `prop_median_ms` / `prop_p95_ms` (Figure 1), `fork_rate`
/// (Table III), `empty_fraction` (Figure 6), `commit12_median_s`
/// (Figure 4; 0 when no transaction reached 12 confirmations).
pub fn headline_scalars() -> Scalars {
    // Both propagation columns come from one analysis pass: the probe
    // memoizes the (median, p95) pair per job index, so the second
    // column reuses the first's work. The cache is keyed by job index —
    // a concurrent worker evicting it merely recomputes, never changes
    // a value — so determinism is unaffected.
    let prop_cache = std::sync::Arc::new(std::sync::Mutex::new(None::<(usize, (f64, f64))>));
    let prop = move |ctx: &crate::metric::RunCtx<'_>, campaign: &_| -> (f64, f64) {
        let mut cache = prop_cache.lock().expect("probe cache never poisoned");
        if let Some((index, value)) = *cache {
            if index == ctx.index {
                return value;
            }
        }
        let r = propagation::analyze(campaign);
        let value = if r.delays.is_empty() {
            (0.0, 0.0)
        } else {
            (r.delays.median(), r.delays.quantile(0.95))
        };
        *cache = Some((ctx.index, value));
        value
    };
    let prop = std::sync::Arc::new(prop);
    let prop_median = std::sync::Arc::clone(&prop);
    Scalars::new()
        .column("prop_median_ms", move |ctx, o| {
            prop_median(ctx, &o.campaign).0
        })
        .column("prop_p95_ms", move |ctx, o| prop(ctx, &o.campaign).1)
        .column("fork_rate", |_, o| {
            let c = forks::analyze(&o.campaign).census;
            (c.recognized_uncles + c.unrecognized) as f64 / c.total().max(1) as f64
        })
        .column("empty_fraction", |_, o| {
            empty_blocks::analyze(&o.campaign, usize::MAX).empty_fraction()
        })
        .column("commit12_median_s", |_, o| {
            commit::analyze(&o.campaign)
                .median_commit_12()
                .unwrap_or(0.0)
        })
}

/// Runs a seeds-only grid over `base` and returns the aggregated
/// headline table — the one-call generator behind EXPERIMENTS.md's
/// cross-seed rows. Memory stays ~flat in `seeds`: each campaign is
/// reduced to five scalars as it completes.
pub fn cross_seed_report(
    base: &Scenario,
    first_seed: u64,
    seeds: usize,
    threads: usize,
) -> GridReport {
    Grid::new(base.clone())
        .seed_range(first_seed, seeds)
        .threads(threads)
        .run(headline_scalars())
        .output
}

/// Figure 7 at the paper's exact scale: 201,086 blocks.
pub fn fig7_month(seed: u64) -> SequenceReport {
    run_chain_only(&ChainOnlyConfig::paper_month(seed)).report()
}

/// §III-D whole-chain scan (7.7M blocks): the 10/11/12/14-run regime.
pub fn security_whole_chain(seed: u64) -> SequenceReport {
    run_chain_only(&ChainOnlyConfig::paper_whole_chain(seed)).report()
}

/// Table I: the measurement-deployment description.
pub fn table1(data: &CampaignData) -> String {
    let mut t = Table::new(vec!["Location", "Peers", "Bandwidth", "Role"]);
    for (v, _) in &data.observers {
        t.row(vec![
            v.name.clone(),
            v.peer_target.to_string(),
            "10 Gbps (backbone)".into(),
            if v.default_peers {
                "redundancy (Table II)".into()
            } else {
                "main campaign".into()
            },
        ]);
    }
    format!("Table I — measurement infrastructure\n{t}")
}

/// The §V ablation: standard uncle rules vs. forbidding same-miner
/// same-height uncles.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// `(policy label, duplicates produced, duplicates recognized,
    /// duplicate uncle rewards in milli-ether, fork blocks, total blocks)`
    pub arms: Vec<AblationArm>,
}

/// One policy arm of the ablation.
#[derive(Debug, Clone)]
pub struct AblationArm {
    /// Policy under test.
    pub policy: UnclePolicy,
    /// One-miner duplicate blocks produced.
    pub duplicates: u64,
    /// Duplicates that earned an uncle reward.
    pub duplicates_recognized: u64,
    /// Uncle rewards collected by duplicates (milli-ether).
    pub duplicate_rewards: MilliEther,
    /// Non-canonical blocks (wasted work).
    pub fork_blocks: u64,
    /// Canonical blocks.
    pub main_blocks: u64,
}

impl AblationArm {
    /// Fraction of total produced work that went to forks.
    pub fn wasted_fraction(&self) -> f64 {
        self.fork_blocks as f64 / (self.fork_blocks + self.main_blocks).max(1) as f64
    }
}

/// Runs the uncle-policy ablation: the same seeded scenario under both
/// policies (applied network-wide, as the §V protocol change would be).
pub fn ablation_uncle_policy(base: &Scenario) -> AblationReport {
    let mut arms = Vec::new();
    for policy in [UnclePolicy::Standard, UnclePolicy::ForbidSameMinerHeight] {
        let mut scenario = base.clone();
        let mut pools = scenario.pools.clone();
        for i in 0..pools.len() {
            let p = pools.pool_mut(ethmeter_types::PoolId(i as u16));
            p.strategy = p.strategy.with_uncle_policy(policy);
        }
        scenario.pools = pools;
        let outcome = run_campaign(&scenario);
        let tree = &outcome.campaign.truth.tree;
        let groups = ethmeter_chain::forks::one_miner_groups(tree);
        let mut duplicates = 0u64;
        let mut recognized = 0u64;
        let mut rewards: MilliEther = 0;
        for g in &groups {
            duplicates += g.duplicates;
            recognized += g.recognized_duplicates;
            for &h in &g.blocks {
                if tree.is_canonical(h) {
                    continue;
                }
                if let Some(nephew) = tree.uncle_included_in(h) {
                    let (Some(n), Some(u)) = (tree.get(nephew), tree.get(h)) else {
                        continue;
                    };
                    rewards += uncle_reward(n.number(), u.number());
                }
            }
        }
        let census = ethmeter_chain::forks::census(tree);
        arms.push(AblationArm {
            policy,
            duplicates,
            duplicates_recognized: recognized,
            duplicate_rewards: rewards,
            fork_blocks: census.recognized_uncles + census.unrecognized,
            main_blocks: census.main,
        });
    }
    AblationReport { arms }
}

impl fmt::Display for AblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§V ablation — uncle policy vs one-miner fork profits")?;
        let mut t = Table::new(vec![
            "Policy",
            "Duplicates",
            "Recognized",
            "Dup rewards (mETH)",
            "Fork blocks",
            "Wasted work",
        ]);
        for arm in &self.arms {
            t.row(vec![
                format!("{:?}", arm.policy),
                arm.duplicates.to_string(),
                arm.duplicates_recognized.to_string(),
                grouped(arm.duplicate_rewards),
                arm.fork_blocks.to_string(),
                pct(arm.wasted_fraction()),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;
    use ethmeter_types::SimDuration;

    fn small_campaign() -> CampaignData {
        let scenario = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(5)
            .duration(SimDuration::from_mins(10))
            .build();
        run_campaign(&scenario).campaign
    }

    #[test]
    fn suite_runs_every_analyzer() {
        let data = small_campaign();
        let suite = Suite::from_campaign(&data);
        assert!(suite.fig1.blocks_measured > 0, "fig1 empty");
        assert!(suite.table2.is_ok(), "table2: {:?}", suite.table2);
        assert!(suite.fig2.blocks > 0);
        assert!(!suite.fig3.pools.is_empty());
        assert!(suite.fig6.total_blocks > 0);
        assert!(suite.fig7.total_blocks > 0);
        // Displays all render.
        let _ = format!(
            "{}{}{}{}{}{}{}{}",
            suite.fig1,
            suite.fig2,
            suite.fig3,
            suite.fig4,
            suite.fig5,
            suite.fig6,
            suite.table3,
            suite.fig7
        );
    }

    #[test]
    fn table1_lists_all_observers() {
        let data = small_campaign();
        let t = table1(&data);
        assert!(t.contains("Table I"));
        assert!(t.contains("NA") && t.contains("EA"));
        assert!(t.contains("redundancy"));
    }

    #[test]
    fn cross_seed_report_aggregates_headline_stats() {
        let base = Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_mins(5))
            .build();
        let report = cross_seed_report(&base, 1, 2, 2);
        assert_eq!(report.rows.len(), 1, "seeds-only grid has one point");
        let row = &report.rows[0];
        assert!(row.point.is_base());
        assert_eq!(report.columns.len(), 5);
        assert!(row.cells.iter().all(|c| c.runs == 2));
        let col = |name: &str| {
            let i = report.columns.iter().position(|c| c == name).expect("col");
            &row.cells[i]
        };
        assert!(col("prop_median_ms").mean > 0.0);
        assert!(col("prop_p95_ms").mean >= col("prop_median_ms").mean);
        // Exports render without panicking and carry the column names.
        assert!(report.to_csv().contains("fork_rate_mean"));
        assert!(report.to_json().contains("\"prop_median_ms\""));
    }

    #[test]
    fn fig7_month_is_paper_scale() {
        let report = fig7_month(1);
        assert_eq!(report.total_blocks, 201_086);
    }
}
