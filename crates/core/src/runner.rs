//! One-call campaign execution.

use ethmeter_measure::CampaignData;
use ethmeter_sim::engine::RunOutcome;
use ethmeter_sim::Engine;
use ethmeter_types::SimTime;

use crate::scenario::Scenario;
use crate::world::{RunStats, SimWorld};

/// The result of running a campaign.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The measurement dataset (observer logs + ground truth).
    pub campaign: CampaignData,
    /// Engine/world counters.
    pub stats: RunStats,
    /// Total events processed.
    pub events: u64,
}

/// Runs a scenario to its configured duration and returns the dataset.
///
/// Deterministic: the same scenario and seed produce an identical
/// [`CampaignData`].
pub fn run_campaign(scenario: &Scenario) -> CampaignOutcome {
    let mut world = SimWorld::new(scenario);
    let initial = world.initial_events();
    let mut engine = Engine::new(world);
    for (t, e) in initial {
        engine.schedule(t, e);
    }
    let outcome = engine.run_until(SimTime::ZERO + scenario.duration);
    debug_assert!(
        outcome == RunOutcome::DeadlineReached || outcome == RunOutcome::QueueExhausted,
        "unexpected engine outcome {outcome:?}"
    );
    let events = engine.processed();
    let world = engine.into_world();
    let stats = world.stats;
    CampaignOutcome {
        campaign: world.into_campaign(scenario.duration),
        stats,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;
    use ethmeter_types::SimDuration;

    #[test]
    fn tiny_campaign_runs_end_to_end() {
        let scenario = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(3)
            .duration(SimDuration::from_mins(4))
            .build();
        let outcome = run_campaign(&scenario);
        assert!(outcome.events > 0);
        assert!(outcome.campaign.truth.tree.head_number() > 5);
        assert_eq!(outcome.campaign.observers.len(), scenario.vantages.len());
        // Ground-truth duration recorded.
        assert_eq!(outcome.campaign.truth.duration, scenario.duration);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let scenario = Scenario::builder()
            .preset(Preset::Tiny)
            .seed(11)
            .duration(SimDuration::from_mins(3))
            .build();
        let a = run_campaign(&scenario);
        let b = run_campaign(&scenario);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.events, b.events);
        assert_eq!(a.campaign.truth.tree.head(), b.campaign.truth.tree.head());
    }
}
