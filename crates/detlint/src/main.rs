//! `detlint` CLI: scan the workspace for determinism-policy violations.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use ethmeter_detlint::{render_json, render_rules, render_text, scan_workspace};

const USAGE: &str = "\
detlint — ethmeter workspace determinism lint

USAGE:
    detlint check [--root DIR] [--format text|json]
    detlint rules

COMMANDS:
    check    scan workspace .rs files against the determinism policy
    rules    print the rule catalog

OPTIONS:
    --root DIR       workspace root to scan (default: nearest ancestor
                     containing Cargo.toml, else current directory)
    --format FORMAT  'text' (default) or 'json' (schema ethmeter-detlint/v1)

EXIT CODES:
    0 clean, 1 violations found, 2 usage/IO error
";

/// Nearest ancestor of the current directory containing a `Cargo.toml`
/// with a `[workspace]` table, so `detlint check` works from any crate
/// subdirectory.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

fn main() -> ExitCode {
    // detlint::allow(entropy, reason = "CLI argument parsing in the lint tool itself; detlint never runs on the simulation path")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(&args[i]),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => return usage_error("--root requires a directory argument"),
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(f @ ("text" | "json")) => format = f.to_string(),
                    Some(f) => return usage_error(&format!("unknown format `{f}`")),
                    None => return usage_error("--format requires 'text' or 'json'"),
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    match cmd {
        Some("rules") => {
            print!("{}", render_rules());
            ExitCode::SUCCESS
        }
        Some("check") | None => {
            let root = root.unwrap_or_else(default_root);
            let report = match scan_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("detlint: failed to scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            match format.as_str() {
                "json" => print!("{}", render_json(&report)),
                _ => print!("{}", render_text(&report)),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        _ => unreachable!(),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
