//! Parallel multi-seed campaign sweeps (the retained-runs convenience
//! layer over [`Grid`]).
//!
//! The paper's statistical claims (and the follow-up literature it cites)
//! rest on *many independent campaigns*: the same scenario re-run from
//! different seeds, and optionally under perturbed parameters. [`Sweep`]
//! is the simplest form of that methodology: it fans one [`Scenario`] out
//! across a seed axis (and an optional variant axis) and hands back every
//! [`CampaignOutcome`] in full.
//!
//! Internally a sweep is a [`Grid`] run with the
//! [`RetainRuns`](crate::metric::RetainRuns) collector — which is also its
//! memory model: **every run's complete dataset stays in memory**, so a
//! sweep is bounded by RAM, not CPU. For large grids prefer [`Grid`]
//! with streaming [`Metric`](crate::metric::Metric)s, which reduce each
//! outcome to a compact summary as it completes; `Sweep` remains for
//! tests and tooling that genuinely need every dataset.
//!
//! Each job produces the outcome of an independent [`run_campaign`] call
//! on its own scenario clone, so per-seed results are **bit-identical** to
//! running the same scenario sequentially — the worker count only changes
//! wall-clock time, never output. Workers reuse one world+engine across
//! their job stream ([`Sweep::reuse_workers`] opts out; the output is
//! identical either way).
//!
//! # Example
//!
//! ```
//! use ethmeter_core::prelude::*;
//! use ethmeter_core::sweep::Sweep;
//!
//! let base = Scenario::builder()
//!     .preset(Preset::Tiny)
//!     .duration(SimDuration::from_mins(2))
//!     .build();
//! let sweep = Sweep::new(base).seed_range(1, 4).threads(2).run();
//! assert_eq!(sweep.runs.len(), 4);
//! assert!(sweep.totals.blocks_produced > 0);
//! ```

use std::sync::Arc;

use ethmeter_types::{BlockHash, FxHashSet};

use crate::grid::{AxisSetter, Grid};
use crate::metric::RetainRuns;
use crate::runner::CampaignOutcome;
use crate::scenario::Scenario;
use crate::world::RunStats;

#[allow(unused_imports)] // doc links
use crate::runner::run_campaign;

/// The axis name `Sweep` lowers its variant axis to.
const VARIANT_AXIS: &str = "variant";

/// A scenario transform forming one point on the variant axis.
type VariantFn = Arc<dyn Fn(Scenario) -> Scenario + Send + Sync>;

/// A multi-seed (and optionally multi-variant) campaign sweep.
///
/// Built fluently from a base [`Scenario`]; [`Sweep::run`] executes the
/// full seed × variant grid and returns a [`SweepOutcome`].
pub struct Sweep {
    base: Scenario,
    seeds: Vec<u64>,
    threads: usize,
    variants: Vec<(String, VariantFn)>,
    reuse_workers: bool,
}

impl Sweep {
    /// Starts a sweep over `base`. With no further configuration the
    /// sweep runs the base scenario's own seed once.
    pub fn new(base: Scenario) -> Self {
        Sweep {
            base,
            seeds: Vec::new(),
            threads: 0,
            variants: Vec::new(),
            reuse_workers: true,
        }
    }

    /// Controls per-worker world reuse (default `true`). With `false`
    /// every job constructs its world from scratch, exactly like calling
    /// [`run_campaign`] in a loop. Results are bit-identical either way;
    /// disabling reuse only costs wall-clock time (the bench suite uses
    /// this to quantify the difference).
    #[must_use]
    pub fn reuse_workers(mut self, reuse: bool) -> Self {
        self.reuse_workers = reuse;
        self
    }

    /// Sets the seed axis explicitly.
    #[must_use]
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the seed axis to `first, first+1, ..., first+count-1`.
    #[must_use]
    pub fn seed_range(self, first: u64, count: usize) -> Self {
        self.seeds((0..count as u64).map(|i| first + i))
    }

    /// Caps the worker threads. `0` (the default) means one worker per
    /// available CPU; the effective count never exceeds the job count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Adds a point on the variant axis: `transform` is applied to a
    /// clone of the base scenario (before seeding), and every seed runs
    /// once per variant. With no variants the base scenario itself is the
    /// single (unlabelled) variant.
    #[must_use]
    pub fn variant<F>(mut self, label: impl Into<String>, transform: F) -> Self
    where
        F: Fn(Scenario) -> Scenario + Send + Sync + 'static,
    {
        self.variants.push((label.into(), Arc::new(transform)));
        self
    }

    /// The number of campaigns [`Sweep::run`] will execute.
    pub fn job_count(&self) -> usize {
        self.seeds.len().max(1) * self.variants.len().max(1)
    }

    /// Lowers the sweep onto the grid machinery: variants become one
    /// labeled axis, seeds the seed axis.
    fn to_grid(&self) -> Grid {
        let mut grid = Grid::new(self.base.clone())
            .threads(self.threads)
            .reuse_workers(self.reuse_workers);
        if !self.seeds.is_empty() {
            grid = grid.seeds(self.seeds.iter().copied());
        }
        if !self.variants.is_empty() {
            let points = self
                .variants
                .iter()
                .map(|(label, transform)| {
                    let transform = Arc::clone(transform);
                    let f: AxisSetter = Box::new(move |s: &mut Scenario| *s = transform(s.clone()));
                    (label.clone(), f)
                })
                .collect();
            grid = grid.axis_with(VARIANT_AXIS, points);
        }
        grid
    }

    /// Runs the whole grid and collects the outcomes.
    ///
    /// Jobs are distributed over worker threads, but results are returned
    /// in grid order (variant-major, then seed), so the output is
    /// independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked, after every worker has exited
    /// cleanly; the message carries each failed job's variant label and
    /// seed (see [`Grid::run`]).
    pub fn run(&self) -> SweepOutcome {
        let out = self.to_grid().run(RetainRuns::new());
        let runs = out
            .output
            .into_iter()
            .map(|r| SweepRun {
                seed: r.seed,
                variant: r.point.get(VARIANT_AXIS).map(str::to_owned),
                outcome: r.outcome,
            })
            .collect();
        SweepOutcome {
            runs,
            totals: out.totals,
            events: out.events,
            threads_used: out.threads_used,
        }
    }
}

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("seeds", &self.seeds)
            .field("threads", &self.threads)
            .field(
                "variants",
                &self.variants.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

/// One completed campaign of a sweep.
#[derive(Debug)]
pub struct SweepRun {
    /// The seed this campaign ran with.
    pub seed: u64,
    /// The variant label, when a variant axis was configured.
    pub variant: Option<String>,
    /// The full campaign result, identical to a sequential
    /// [`run_campaign`] of the same scenario.
    pub outcome: CampaignOutcome,
}

impl SweepRun {
    /// This run's canonical chain head — the single per-run accessor
    /// behind [`SweepOutcome::heads`] and [`SweepOutcome::distinct_heads`].
    pub fn head(&self) -> BlockHash {
        self.outcome.campaign.truth.tree.head()
    }
}

/// Everything a [`Sweep`] produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-campaign results in grid order (variant-major, then seed).
    pub runs: Vec<SweepRun>,
    /// Field-wise sum of every campaign's [`RunStats`].
    pub totals: RunStats,
    /// Total events processed across all campaigns.
    pub events: u64,
    /// Worker threads actually used.
    pub threads_used: usize,
}

impl SweepOutcome {
    /// Per-run `(seed, canonical head)` pairs, in grid order.
    pub fn heads(&self) -> Vec<(u64, BlockHash)> {
        self.runs.iter().map(|r| (r.seed, r.head())).collect()
    }

    /// The number of distinct canonical heads across all runs.
    pub fn distinct_heads(&self) -> usize {
        self.runs
            .iter()
            .map(SweepRun::head)
            .collect::<FxHashSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;
    use ethmeter_types::SimDuration;

    fn base() -> Scenario {
        Scenario::builder()
            .preset(Preset::Tiny)
            .duration(SimDuration::from_mins(2))
            .build()
    }

    #[test]
    fn sweep_defaults_to_base_seed() {
        let scenario = base();
        let seed = scenario.seed;
        let sweep = Sweep::new(scenario).threads(1).run();
        assert_eq!(sweep.runs.len(), 1);
        assert_eq!(sweep.runs[0].seed, seed);
        assert_eq!(sweep.threads_used, 1);
    }

    #[test]
    fn grid_order_and_totals() {
        let sweep = Sweep::new(base()).seeds([5, 6, 7]).threads(2).run();
        assert_eq!(
            sweep.runs.iter().map(|r| r.seed).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        let mut expected = RunStats::default();
        let mut events = 0;
        for run in &sweep.runs {
            expected.merge(&run.outcome.stats);
            events += run.outcome.events;
        }
        assert_eq!(sweep.totals, expected);
        assert_eq!(sweep.events, events);
        assert!(sweep.totals.blocks_produced > 0);
    }

    #[test]
    fn variants_multiply_the_grid() {
        let sweep = Sweep::new(base())
            .seeds([1, 2])
            .threads(2)
            .variant("fast-blocks", |s| Scenario {
                interblock: SimDuration::from_secs(8),
                ..s
            })
            .variant("slow-blocks", |s| Scenario {
                interblock: SimDuration::from_secs(20),
                ..s
            })
            .run();
        assert_eq!(sweep.runs.len(), 4);
        let labels: Vec<_> = sweep.runs.iter().map(|r| r.variant.as_deref()).collect();
        assert_eq!(
            labels,
            vec![
                Some("fast-blocks"),
                Some("fast-blocks"),
                Some("slow-blocks"),
                Some("slow-blocks")
            ]
        );
        // More frequent blocks ⇒ higher head for the same seed/duration.
        let head_number = |i: usize| sweep.runs[i].outcome.campaign.truth.tree.head_number();
        assert!(head_number(0) > head_number(2));
    }

    #[test]
    fn thread_cap_never_exceeds_jobs() {
        let sweep = Sweep::new(base()).seeds([9]).threads(16).run();
        assert_eq!(sweep.threads_used, 1);
    }

    #[test]
    fn heads_route_through_the_per_run_accessor() {
        let sweep = Sweep::new(base()).seeds([5, 6]).threads(2).run();
        let heads = sweep.heads();
        assert_eq!(heads.len(), 2);
        for (run, (seed, head)) in sweep.runs.iter().zip(&heads) {
            assert_eq!(run.seed, *seed);
            assert_eq!(run.head(), *head);
        }
        assert_eq!(sweep.distinct_heads(), 2);
    }
}
