//! Stateful pool behaviors: the selfish-mining state machine.
//!
//! The probabilistic [`crate::Strategy`] knobs reproduce what the paper
//! *observed* (empty blocks, one-miner forks); they cannot express the
//! withholding attacks that the same pool concentration *enables*. This
//! module adds the uncle-aware selfish-mining machine of "Selfish Mining
//! in Ethereum" (Niu & Feng, 2019): the attacker mines on a private
//! branch, tracks its lead over the public chain, matches or overrides
//! honest blocks at fork-choice time, and releases abandoned private
//! blocks so the network references them as uncles.
//!
//! [`SelfishState`] is the *pure* decision core — it never touches a
//! network, a registry, or an RNG. Drivers feed it two events (the pool
//! solved a block; the pool's gateway adopted a new public head) and
//! obey its release decisions. That purity is what lets the same machine
//! drive both the full discrete-event world (`ethmeter-core`'s
//! `SimWorld`, where the tie-win fraction γ *emerges* from gateway
//! placement) and the chain-only profitability race (where γ is an
//! explicit parameter), and what makes its invariants proptestable.

use ethmeter_types::{BlockHash, BlockNumber};

/// How a pool decides what to do with the blocks it mines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolBehavior {
    /// Publish every block immediately (the paper's pools; the
    /// probabilistic [`crate::Strategy`] knobs still apply). This is the
    /// default and is bit-identical to the pre-behavior code path — the
    /// golden fingerprints pin that.
    #[default]
    Honest,
    /// Withhold blocks on a private branch and release them at
    /// fork-choice time per the selfish-mining machine.
    Selfish(SelfishConfig),
}

impl PoolBehavior {
    /// True for any behavior other than plain honest publishing.
    pub fn is_adversarial(&self) -> bool {
        !matches!(self, PoolBehavior::Honest)
    }
}

/// Parameters of the selfish-mining machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfishConfig {
    /// The lead (private tip height minus public head height, measured
    /// *after* a public advance) at or below which the attacker publishes
    /// its entire remaining private branch.
    ///
    /// `1` is the classic Niu–Feng machine: override while the private
    /// branch is still strictly longer. `0` is the fully lead-stubborn
    /// variant: keep matching block for block and settle only ties.
    /// Values `k > 1` give up the withheld lead earlier (useful as
    /// ablation arms; they interpolate toward honest mining).
    pub override_lead: u64,
}

impl SelfishConfig {
    /// The classic selfish-mining machine (override at lead 1).
    pub fn classic() -> Self {
        SelfishConfig { override_lead: 1 }
    }

    /// A lead-`k` stubborn variant: the attacker keeps racing until its
    /// lead falls to `k` before publishing the whole branch. `stubborn(1)`
    /// is [`SelfishConfig::classic`]; `stubborn(0)` never overrides early.
    pub fn stubborn(override_lead: u64) -> Self {
        SelfishConfig { override_lead }
    }
}

impl Default for SelfishConfig {
    fn default() -> Self {
        Self::classic()
    }
}

/// One withheld block of the private branch.
#[derive(Debug, Clone)]
pub struct Withheld<B> {
    /// The block's hash.
    pub hash: BlockHash,
    /// The parent it extends (the previous private block, or the base).
    pub parent: BlockHash,
    /// Height.
    pub number: BlockNumber,
    /// Driver payload (registry slot, full block, ...), handed back when
    /// the machine decides to release the block.
    pub payload: B,
}

/// The selfish-mining state machine (see the module docs).
///
/// The machine tracks a *base* (the public block the private branch
/// forks from), the withheld branch itself, and how much of that branch
/// has already been shown to the network. Drivers call
/// [`SelfishState::target`] to know where the pool mines,
/// [`SelfishState::on_solve`] when the pool wins a PoW race, and
/// [`SelfishState::on_public_head`] when the pool's gateway adopts a new
/// public head; both event methods return the payloads of every block
/// that must be published *now*.
#[derive(Debug, Clone)]
pub struct SelfishState<B> {
    cfg: SelfishConfig,
    /// `(hash, height)` of the public block the private branch extends.
    /// Only rewritten when the branch is empty (fold/adopt/abandon), so
    /// the branch is always connected to it.
    base: (BlockHash, BlockNumber),
    /// The private branch, oldest first; entry `i` extends entry `i-1`.
    private: Vec<Withheld<B>>,
    /// Length of the already-released prefix of `private`.
    released: usize,
    /// Highest public head height the machine has been told about.
    public_number: BlockNumber,
    /// True while the fully released branch is tied with a public branch
    /// of equal height (state 0′ of the classic machine): the next solve
    /// is published immediately instead of withheld.
    racing: bool,
}

/// What a [`SelfishState`] event decided, beyond the blocks to release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfishOutcome {
    /// The solved block was withheld on the private branch.
    Withheld,
    /// The solved block was published immediately (race win).
    Published,
    /// The branch (or part of it) was released to match the public
    /// height; the remainder stays private.
    Matched,
    /// The whole branch was released because it is strictly longer than
    /// the public chain (override) — the branch folds into the base.
    Overrode,
    /// The whole branch was released at equal height — a tie race the
    /// network (γ) will settle.
    Tied,
    /// The public chain overtook the branch; the leftovers were released
    /// only so the network can reference them as uncles.
    Abandoned,
    /// Nothing to do (adopted the head, or the advance was already
    /// covered by earlier releases).
    Idle,
}

impl<B> SelfishState<B> {
    /// A machine rooted at `base` (typically the genesis block).
    pub fn new(cfg: SelfishConfig, base: BlockHash) -> Self {
        SelfishState {
            cfg,
            base: (base, 0),
            private: Vec::new(),
            released: 0,
            public_number: 0,
            racing: false,
        }
    }

    /// The configuration this machine runs.
    pub fn config(&self) -> SelfishConfig {
        self.cfg
    }

    /// `(parent hash, height)` of the next block the pool should mine:
    /// on top of the private tip, or of the base when nothing is
    /// withheld.
    pub fn target(&self) -> (BlockHash, BlockNumber) {
        match self.private.last() {
            Some(tip) => (tip.hash, tip.number + 1),
            None => (self.base.0, self.base.1 + 1),
        }
    }

    /// `(hash, height)` of the private tip, if a branch exists.
    pub fn tip(&self) -> Option<(BlockHash, BlockNumber)> {
        self.private.last().map(|w| (w.hash, w.number))
    }

    /// Blocks currently on the private branch (released prefix included).
    pub fn branch_len(&self) -> usize {
        self.private.len()
    }

    /// How many of the branch's blocks have been released.
    pub fn released_len(&self) -> usize {
        self.released
    }

    /// The private tip's lead over the last observed public head.
    /// Never negative: the machine abandons the branch the moment the
    /// public chain overtakes it.
    pub fn lead(&self) -> u64 {
        match self.private.last() {
            Some(tip) => tip.number.saturating_sub(self.public_number),
            None => 0,
        }
    }

    /// True while a fully released branch is racing a public tie.
    pub fn is_racing(&self) -> bool {
        self.racing
    }

    /// The withheld branch, oldest first (inspection/testing).
    pub fn branch(&self) -> &[Withheld<B>] {
        &self.private
    }

    fn drain_unreleased(&mut self, upto: usize) -> Vec<B>
    where
        B: Clone,
    {
        let out: Vec<B> = self.private[self.released..upto]
            .iter()
            .map(|w| w.payload.clone())
            .collect();
        self.released = upto;
        out
    }

    /// Folds the (fully released) branch away: mining continues on
    /// `head` as if the pool were honest there.
    fn fold_to(&mut self, head: BlockHash, number: BlockNumber) {
        self.base = (head, number);
        self.private.clear();
        self.released = 0;
        self.racing = false;
    }

    /// The pool solved a block at [`SelfishState::target`]. Returns the
    /// payloads to publish now (empty means the block was withheld).
    pub fn on_solve(&mut self, hash: BlockHash, payload: B) -> (SelfishOutcome, Vec<B>)
    where
        B: Clone,
    {
        let (parent, number) = self.target();
        if self.racing {
            // State 0′: the branch is public and tied; this block breaks
            // the tie in our favor. Publish it immediately and fold.
            self.fold_to(hash, number);
            return (SelfishOutcome::Published, vec![payload]);
        }
        self.private.push(Withheld {
            hash,
            parent,
            number,
            payload,
        });
        (SelfishOutcome::Withheld, Vec::new())
    }

    /// The pool's gateway adopted a new public head. `extends_tip` must
    /// be true iff `head` is the private tip or a descendant of it (the
    /// driver answers this from its chain view). Returns the payloads to
    /// publish now.
    pub fn on_public_head(
        &mut self,
        head: BlockHash,
        number: BlockNumber,
        extends_tip: bool,
    ) -> (SelfishOutcome, Vec<B>)
    where
        B: Clone,
    {
        self.public_number = self.public_number.max(number);
        if extends_tip {
            // The network adopted our branch (override landed, or we won
            // a tie): continue from the head like an honest miner.
            self.fold_to(head, number);
            return (SelfishOutcome::Idle, Vec::new());
        }
        if self.private.is_empty() {
            self.fold_to(head, number);
            return (SelfishOutcome::Idle, Vec::new());
        }
        let tip_number = self.private.last().expect("branch non-empty").number;
        if number > tip_number {
            // Overtaken: the branch lost. Release the leftovers anyway —
            // published losers are uncle candidates worth 7/8 of a block
            // reward, the Niu–Feng uncle channel.
            let rest = self.drain_unreleased(self.private.len());
            self.fold_to(head, number);
            return (SelfishOutcome::Abandoned, rest);
        }
        let lead = tip_number - number;
        if lead == 0 {
            // Equal height: show everything and let the network (γ)
            // settle the tie. The branch stays recorded so a later win
            // can still fold onto it.
            let rest = self.drain_unreleased(self.private.len());
            self.racing = true;
            return (SelfishOutcome::Tied, rest);
        }
        if lead <= self.cfg.override_lead {
            // Strictly longer: publish the whole branch; fork choice
            // must switch to it. Fold eagerly so mining continues on the
            // tip without waiting for our own gateway's import.
            let rest = self.drain_unreleased(self.private.len());
            let tip = (
                self.private.last().expect("branch non-empty").hash,
                tip_number,
            );
            self.fold_to(tip.0, tip.1);
            return (SelfishOutcome::Overrode, rest);
        }
        // Comfortable lead: reveal just enough to contest every public
        // height, keep the rest private.
        let need = (number - self.base.1) as usize;
        if need > self.released {
            let out = self.drain_unreleased(need);
            return (SelfishOutcome::Matched, out);
        }
        (SelfishOutcome::Idle, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u64) -> BlockHash {
        BlockHash(0xbeef_0000 + n)
    }

    fn machine() -> SelfishState<u64> {
        SelfishState::new(SelfishConfig::classic(), h(0))
    }

    #[test]
    fn honest_default_and_adversarial_flag() {
        assert_eq!(PoolBehavior::default(), PoolBehavior::Honest);
        assert!(!PoolBehavior::Honest.is_adversarial());
        assert!(PoolBehavior::Selfish(SelfishConfig::classic()).is_adversarial());
        assert_eq!(SelfishConfig::default(), SelfishConfig::classic());
        assert_eq!(SelfishConfig::stubborn(1), SelfishConfig::classic());
    }

    #[test]
    fn first_solve_is_withheld() {
        let mut m = machine();
        assert_eq!(m.target(), (h(0), 1));
        let (out, rel) = m.on_solve(h(1), 1);
        assert_eq!(out, SelfishOutcome::Withheld);
        assert!(rel.is_empty());
        assert_eq!(m.target(), (h(1), 2));
        assert_eq!(m.lead(), 1);
    }

    #[test]
    fn lead_one_honest_block_forces_tie_release() {
        let mut m = machine();
        m.on_solve(h(1), 1);
        // Honest network reaches height 1 on a competing block.
        let (out, rel) = m.on_public_head(h(100), 1, false);
        assert_eq!(out, SelfishOutcome::Tied);
        assert_eq!(rel, vec![1]);
        assert!(m.is_racing());
        // We still mine on our own tip during the race.
        assert_eq!(m.target(), (h(1), 2));
    }

    #[test]
    fn race_win_by_own_solve_publishes_immediately() {
        let mut m = machine();
        m.on_solve(h(1), 1);
        m.on_public_head(h(100), 1, false);
        let (out, rel) = m.on_solve(h(2), 2);
        assert_eq!(out, SelfishOutcome::Published);
        assert_eq!(rel, vec![2]);
        assert!(!m.is_racing());
        assert_eq!(m.target(), (h(2), 3));
        assert_eq!(m.branch_len(), 0);
    }

    #[test]
    fn race_win_by_honest_extension_folds() {
        let mut m = machine();
        m.on_solve(h(1), 1);
        m.on_public_head(h(100), 1, false);
        // An honest miner built on our released block: we won the tie.
        let (out, rel) = m.on_public_head(h(101), 2, true);
        assert_eq!(out, SelfishOutcome::Idle);
        assert!(rel.is_empty());
        assert_eq!(m.target(), (h(101), 3));
    }

    #[test]
    fn race_loss_abandons_cleanly() {
        let mut m = machine();
        m.on_solve(h(1), 1);
        m.on_public_head(h(100), 1, false);
        // The honest branch got extended instead: adopt it.
        let (out, rel) = m.on_public_head(h(101), 2, false);
        assert_eq!(out, SelfishOutcome::Abandoned);
        assert!(rel.is_empty(), "everything was already released");
        assert_eq!(m.target(), (h(101), 3));
        assert!(!m.is_racing());
    }

    #[test]
    fn lead_two_override_releases_whole_branch() {
        let mut m = machine();
        m.on_solve(h(1), 1);
        m.on_solve(h(2), 2);
        assert_eq!(m.lead(), 2);
        let (out, rel) = m.on_public_head(h(100), 1, false);
        assert_eq!(out, SelfishOutcome::Overrode);
        assert_eq!(rel, vec![1, 2]);
        // Folded onto our own tip.
        assert_eq!(m.target(), (h(2), 3));
        assert_eq!(m.branch_len(), 0);
    }

    #[test]
    fn long_lead_matches_then_overrides() {
        let mut m = machine();
        for i in 1..=4u64 {
            m.on_solve(h(i), i);
        }
        // Honest height 1: match with our first block only.
        let (out, rel) = m.on_public_head(h(100), 1, false);
        assert_eq!(out, SelfishOutcome::Matched);
        assert_eq!(rel, vec![1]);
        assert_eq!(m.released_len(), 1);
        // Honest height 2: still lead 2 -> match the second block.
        let (out, rel) = m.on_public_head(h(101), 2, false);
        assert_eq!(out, SelfishOutcome::Matched);
        assert_eq!(rel, vec![2]);
        // Honest height 3: lead 1 -> override with the rest.
        let (out, rel) = m.on_public_head(h(102), 3, false);
        assert_eq!(out, SelfishOutcome::Overrode);
        assert_eq!(rel, vec![3, 4]);
        assert_eq!(m.target(), (h(4), 5));
    }

    #[test]
    fn overtaken_branch_is_released_for_uncles() {
        let mut m = machine();
        m.on_solve(h(1), 1);
        m.on_solve(h(2), 2);
        // Public jumps straight past us (e.g. a burst of honest imports).
        let (out, rel) = m.on_public_head(h(100), 3, false);
        assert_eq!(out, SelfishOutcome::Abandoned);
        assert_eq!(rel, vec![1, 2], "losers still go public as uncle bait");
        assert_eq!(m.target(), (h(100), 4));
        assert_eq!(m.lead(), 0);
    }

    #[test]
    fn stubborn_variant_keeps_matching_at_lead_one() {
        let mut m: SelfishState<u64> = SelfishState::new(SelfishConfig::stubborn(0), h(0));
        m.on_solve(h(1), 1);
        m.on_solve(h(2), 2);
        let (out, rel) = m.on_public_head(h(100), 1, false);
        assert_eq!(out, SelfishOutcome::Matched, "no early override");
        assert_eq!(rel, vec![1]);
        assert_eq!(m.branch_len(), 2);
        // Only the tie is settled by release.
        let (out, rel) = m.on_public_head(h(101), 2, false);
        assert_eq!(out, SelfishOutcome::Tied);
        assert_eq!(rel, vec![2]);
        assert!(m.is_racing());
    }

    #[test]
    fn adopting_heads_without_a_branch_is_honest() {
        let mut m = machine();
        let (out, rel) = m.on_public_head(h(100), 1, false);
        assert_eq!(out, SelfishOutcome::Idle);
        assert!(rel.is_empty());
        assert_eq!(m.target(), (h(100), 2));
        assert_eq!(m.branch_len(), 0);
        assert_eq!(m.config(), SelfishConfig::classic());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn h(n: u64) -> BlockHash {
        BlockHash(0xcafe_0000 + n)
    }

    /// Replays a random event script against the machine, checking the
    /// structural invariants after every step:
    ///
    /// - the lead is never negative (the machine abandons instead);
    /// - `released` is a prefix of the branch;
    /// - the branch is connected: entry 0 extends the base, entry i
    ///   extends entry i-1, heights are consecutive;
    /// - every release output is itself a connected run of payloads;
    /// - the mining target is always one above the tip (or base).
    fn check_invariants(m: &SelfishState<u64>) {
        assert!(m.released_len() <= m.branch_len());
        let (base_hash, base_number) = match m.branch().first() {
            Some(first) => (first.parent, first.number - 1),
            None => {
                let (t, n) = m.target();
                (t, n - 1)
            }
        };
        let mut parent = base_hash;
        let mut number = base_number;
        for w in m.branch() {
            assert_eq!(w.parent, parent, "branch must be connected");
            assert_eq!(w.number, number + 1, "heights must be consecutive");
            parent = w.hash;
            number = w.number;
        }
        let (_, target_number) = m.target();
        assert_eq!(target_number, number + 1);
    }

    proptest! {
        #[test]
        fn random_schedules_hold_invariants(
            override_lead in 0u64..3,
            script in proptest::collection::vec((0u8..4, 0u64..3), 1..60),
        ) {
            let mut m: SelfishState<u64> =
                SelfishState::new(SelfishConfig::stubborn(override_lead), h(0));
            let mut next = 1u64;
            let mut public = 0u64; // highest public height announced
            let mut released_total = 0usize;
            for (op, jump) in script {
                match op {
                    // The pool solves at its target.
                    0 => {
                        let (_, n) = m.target();
                        let hash = h(next);
                        next += 1;
                        let (_, rel) = m.on_solve(hash, n);
                        released_total += rel.len();
                    }
                    // A competing public head at/above the known height.
                    1 | 2 => {
                        public = (public + 1).max(public + jump);
                        let hash = h(10_000 + next);
                        next += 1;
                        let (_, rel) = m.on_public_head(hash, public, false);
                        released_total += rel.len();
                        prop_assert!(
                            m.branch_len() == 0 || m.lead() >= 1 || m.is_racing(),
                            "an unreleased branch never trails the public chain"
                        );
                    }
                    // The public chain adopted our tip (only possible for
                    // a fully released branch at or above public height).
                    _ => {
                        if let Some((tip, tip_n)) = m.tip() {
                            if tip_n >= public && m.released_len() == m.branch_len() {
                                public = tip_n;
                                let (_, rel) = m.on_public_head(tip, tip_n, true);
                                released_total += rel.len();
                            }
                        }
                    }
                }
                // Lead is computed with saturating_sub; prove it is real:
                // whenever a branch survives an event, its tip sits at or
                // above every announced public height (never a negative
                // lead — the machine abandons instead).
                if let Some((_, tip_n)) = m.tip() {
                    prop_assert!(tip_n >= public, "tip {tip_n} vs public {public}");
                }
                check_invariants(&m);
            }
            // Releases only ever surface blocks that exist.
            prop_assert!(released_total <= (next as usize));
        }
    }
}
