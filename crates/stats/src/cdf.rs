//! Empirical cumulative distribution functions.
//!
//! Figures 4, 5 and 7 of the paper are CDF plots; [`Cdf`] supports both the
//! "fraction at or below x" query used to print those series and the inverse
//! quantile query used for headline numbers ("median waiting time for 12
//! blocks was 189 seconds").

use std::fmt;

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from a sample.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN or infinite.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().collect();
        assert!(
            sorted.iter().all(|v| v.is_finite()),
            "CDF input must be finite"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Cdf { sorted }
    }

    /// Folds another CDF's sample into this one.
    ///
    /// Merging is exact (the empirical CDFs are over the union multiset of
    /// both samples) and the result depends only on the combined sample,
    /// never on the merge-tree shape — per-run CDFs streamed out of a
    /// sweep aggregate to the same object in any grouping.
    pub fn merge(&mut self, other: &Cdf) {
        // Fast paths: empty operands and non-overlapping ranges (the common
        // case when folding per-shard segments that cover disjoint spans)
        // skip the element-wise merge walk entirely.
        if other.sorted.is_empty() {
            return;
        }
        if self.sorted.is_empty() {
            self.sorted = other.sorted.clone();
            return;
        }
        let self_last = *self.sorted.last().expect("non-empty");
        if self_last <= other.sorted[0] {
            self.sorted.extend_from_slice(&other.sorted);
            return;
        }
        if *other.sorted.last().expect("non-empty") < self.sorted[0] {
            let mut out = Vec::with_capacity(self.sorted.len() + other.sorted.len());
            out.extend_from_slice(&other.sorted);
            out.append(&mut self.sorted);
            self.sorted = out;
            return;
        }
        let merged = merge_sorted(&self.sorted, &other.sorted);
        self.sorted = merged;
    }

    /// Folds many CDFs into this one in `O(n log k)` total work instead of
    /// the `O(n·k)` a chain of pairwise [`Cdf::merge`] calls costs (each
    /// pairwise merge re-copies the whole accumulated sample).
    ///
    /// The result is the same exact union-multiset CDF as any sequence of
    /// pairwise merges — merging stays merge-tree independent — so sweeps
    /// and the sharded engine can fold hundreds of per-segment CDFs without
    /// quadratic re-copying.
    pub fn merge_many<'a, I: IntoIterator<Item = &'a Cdf>>(&mut self, others: I) {
        // Tournament fold: repeatedly merge pairs of runs until one is left.
        let mut runs: Vec<Vec<f64>> = Vec::new();
        if !self.sorted.is_empty() {
            runs.push(std::mem::take(&mut self.sorted));
        }
        runs.extend(
            others
                .into_iter()
                .filter(|c| !c.sorted.is_empty())
                .map(|c| c.sorted.clone()),
        );
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(merge_sorted(&a, &b)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        self.sorted = runs.pop().unwrap_or_default();
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)` under the empirical distribution (0 for empty sample).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The smallest sample value `v` with `P(X <= v) >= q`.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Samples the CDF at `points` evenly spaced x-values across the data
    /// range, returning `(x, P(X <= x))` pairs — the plottable series.
    ///
    /// Returns an empty vector for an empty sample.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }

    /// Borrow the sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Merges two ascending slices into one ascending vector (stable: ties
/// take the left operand's elements first — immaterial for equal floats,
/// but it keeps the operation fully deterministic).
pub(crate) fn merge_sorted(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "cdf(n=0)");
        }
        write!(
            f,
            "cdf(n={}, p10={:.3}, p50={:.3}, p90={:.3}, p99={:.3})",
            self.count(),
            self.quantile(0.10),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_is_fraction_at_or_below() {
        let c = Cdf::from_values([1.0, 2.0, 2.0, 4.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(3.0), 0.75);
        assert_eq!(c.at(4.0), 1.0);
    }

    #[test]
    fn quantile_inverts_at() {
        let c = Cdf::from_values((1..=1000).map(f64::from));
        assert_eq!(c.quantile(0.5), 500.0);
        assert_eq!(c.quantile(0.9), 900.0);
        assert_eq!(c.quantile(1.0), 1000.0);
        // at(quantile(q)) >= q for all q.
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            assert!(c.at(c.quantile(q)) >= q);
        }
    }

    #[test]
    fn series_is_monotone() {
        let c = Cdf::from_values([5.0, 1.0, 3.0, 2.0, 4.0]);
        let s = c.series(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 1.0);
        assert_eq!(s[10].0, 5.0);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(s[10].1, 1.0);
    }

    #[test]
    fn degenerate_series() {
        let c = Cdf::from_values([7.0, 7.0]);
        assert_eq!(c.series(5), vec![(7.0, 1.0)]);
        let empty = Cdf::from_values(std::iter::empty());
        assert!(empty.series(5).is_empty());
        assert_eq!(empty.at(3.0), 0.0);
    }

    #[test]
    fn merge_is_union_and_shape_independent() {
        let a = [5.0, 1.0, 3.0];
        let b = [2.0, 4.0];
        let c = [0.5, 6.0];
        // ((a + b) + c) == (a + (b + c)) == one-shot construction.
        let mut left = Cdf::from_values(a);
        left.merge(&Cdf::from_values(b));
        left.merge(&Cdf::from_values(c));
        let mut right_tail = Cdf::from_values(b);
        right_tail.merge(&Cdf::from_values(c));
        let mut right = Cdf::from_values(a);
        right.merge(&right_tail);
        let oneshot = Cdf::from_values(a.into_iter().chain(b).chain(c));
        assert_eq!(left, oneshot);
        assert_eq!(right, oneshot);
        // Merging an empty CDF is the identity.
        let mut x = Cdf::from_values(a);
        x.merge(&Cdf::from_values(std::iter::empty()));
        assert_eq!(x, Cdf::from_values(a));
    }

    #[test]
    fn merge_fast_paths_match_general_path() {
        // Disjoint-after, disjoint-before, overlapping, and empty operands
        // all land on the one-shot construction.
        let cases: [(&[f64], &[f64]); 5] = [
            (&[1.0, 2.0], &[3.0, 4.0]),
            (&[3.0, 4.0], &[1.0, 2.0]),
            (&[1.0, 3.0], &[2.0, 4.0]),
            (&[], &[1.0, 2.0]),
            (&[1.0, 2.0], &[]),
        ];
        for (a, b) in cases {
            let mut m = Cdf::from_values(a.iter().copied());
            m.merge(&Cdf::from_values(b.iter().copied()));
            let oneshot = Cdf::from_values(a.iter().chain(b).copied());
            assert_eq!(m, oneshot, "a={a:?} b={b:?}");
        }
        // Touching boundary (tie) stays exact too.
        let mut m = Cdf::from_values([1.0, 2.0]);
        m.merge(&Cdf::from_values([2.0, 3.0]));
        assert_eq!(m, Cdf::from_values([1.0, 2.0, 2.0, 3.0]));
    }

    #[test]
    fn merge_many_equals_pairwise_chain() {
        let parts: Vec<Vec<f64>> = (0..7)
            .map(|k| (0..40).map(|i| ((i * 7 + k * 3) % 50) as f64).collect())
            .collect();
        let cdfs: Vec<Cdf> = parts
            .iter()
            .map(|p| Cdf::from_values(p.iter().copied()))
            .collect();
        let mut chained = cdfs[0].clone();
        for c in &cdfs[1..] {
            chained.merge(c);
        }
        let mut kway = cdfs[0].clone();
        kway.merge_many(&cdfs[1..]);
        assert_eq!(kway, chained);
        // Degenerate inputs.
        let mut empty = Cdf::from_values(std::iter::empty());
        empty.merge_many(std::iter::empty());
        assert!(empty.is_empty());
        let mut single = Cdf::from_values([2.0, 1.0]);
        single.merge_many(std::iter::empty());
        assert_eq!(single, Cdf::from_values([1.0, 2.0]));
    }

    #[test]
    fn display_is_informative() {
        let c = Cdf::from_values([1.0, 2.0, 3.0]);
        assert!(c.to_string().contains("n=3"));
        let e = Cdf::from_values(std::iter::empty());
        assert_eq!(e.to_string(), "cdf(n=0)");
    }
}
