#!/usr/bin/env bash
# Tier-1 verification plus lint gates. Run from the repo root.
set -euxo pipefail

cargo build --release
# Tier-1 is `cargo test -q` (the facade package); --workspace is a
# superset, so running it alone avoids compiling the facade suites twice.
cargo test --workspace -q
# Golden determinism fingerprints must hold in BOTH profiles: a
# float/ordering divergence between debug and --release would silently
# split "tested behavior" from "benchmarked behavior". The debug run is
# covered by the workspace suite above; re-run the goldens in release.
cargo test --release --test golden -q
cargo check --workspace --benches --examples
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check

# Bench smoke: the engine suite must complete in --quick mode and emit
# well-formed JSON (jq parses it and the schema tag must match). The quick
# run overwrites BENCH_engine.json, so save the tree's report (whether
# committed or freshly regenerated) and restore it afterwards — CI must
# never leave smoke-mode numbers behind.
saved_report=""
if [ -f BENCH_engine.json ]; then
    saved_report="$(mktemp)"
    cp BENCH_engine.json "$saved_report"
fi
cargo bench -p ethmeter-bench --bench engine -- --quick
test "$(jq -r .schema BENCH_engine.json)" = "ethmeter-bench-engine/v3"
jq -e '.presets | length == 3' BENCH_engine.json > /dev/null
# v2 additions: per-preset counting-allocator metrics, PR-over-PR
# baselines, and the multi-seed sweep-throughput survey.
jq -e '.presets | all(has("allocs_per_event") and has("steady_allocs_per_event")
                      and has("alloc_peak_bytes") and has("speedup_vs_pr2"))' \
    BENCH_engine.json > /dev/null
jq -e '.baseline | has("pr2_small_events_per_sec")' BENCH_engine.json > /dev/null
jq -e '.sweep | has("reused_events_per_sec") and has("fresh_events_per_sec")
                and has("reuse_speedup") and has("seeds") and has("threads_used")' \
    BENCH_engine.json > /dev/null
# v3 addition: the grid-scale memory survey — streaming metric collectors
# must keep a multi-run grid's peak heap near one campaign's footprint,
# while the retain-everything collector grows with the run count.
jq -e '.grid | has("runs") and has("single_run_peak_bytes")
               and has("streaming_peak_bytes") and has("retain_runs_peak_bytes")
               and has("streaming_over_single") and has("retain_over_single")' \
    BENCH_engine.json > /dev/null
jq -e '.grid.runs >= 64' BENCH_engine.json > /dev/null
jq -e '.grid.streaming_over_single < .grid.retain_over_single' BENCH_engine.json > /dev/null
if [ -n "$saved_report" ]; then
    mv "$saved_report" BENCH_engine.json
fi
