//! Geographic impact study (paper §III-B): which vantage point hears about
//! new blocks first, and how each pool's hidden gateways shape that.
//!
//! Reproduces Figures 1, 2 and 3 on one campaign, then re-runs the same
//! seed with *uniformly placed* gateways to show the effect disappears —
//! the paper's causal claim ("the cause of this ... is simply due to the
//! fact that several prominent mining pools operate in Asia") as a
//! counterfactual experiment.
//!
//! ```sh
//! cargo run --release --example geo_impact
//! ```

use ethmeter::analysis::{first_observation, propagation};
use ethmeter::mining::PoolDirectory;
use ethmeter::prelude::*;
use ethmeter::types::PoolId;

fn main() {
    let scenario = Scenario::builder()
        .preset(Preset::Small)
        .seed(2020)
        .duration(SimDuration::from_hours(1))
        .build();
    println!("=== campaign with the paper's geo-located pool gateways ===\n");
    let outcome = run_campaign(&scenario);
    println!("{}\n", propagation::analyze(&outcome.campaign));
    println!("{}\n", first_observation::geo(&outcome.campaign));
    println!("{}\n", first_observation::by_pool(&outcome.campaign, 15));

    // Counterfactual: same hash-power distribution, but every pool's
    // gateways spread uniformly across all regions.
    println!("=== counterfactual: gateways spread uniformly ===\n");
    let mut pools = PoolDirectory::paper_dsn2020();
    for i in 0..pools.len() {
        let p = pools.pool_mut(PoolId(i as u16));
        p.gateway_regions = Region::ALL.iter().map(|&r| (r, 1.0)).collect();
    }
    let counterfactual = Scenario::builder()
        .preset(Preset::Small)
        .seed(2020)
        .duration(SimDuration::from_hours(1))
        .pools(pools)
        .build();
    let outcome = run_campaign(&counterfactual);
    println!("{}", first_observation::geo(&outcome.campaign));
    println!(
        "\nWith uniform gateways the regional advantage flattens: geography\n\
         only matters because gateway placement is concentrated."
    );
}
