//! Figures 2 and 3: who sees new blocks first, and from which pools.
//!
//! Figure 2: "the proportion of times each of our measurement nodes was
//! the first to observe a new block", with NTP-uncertainty error bars.
//! Figure 3: the same wins broken down by the block's origin mining pool,
//! which reveals where each pool's gateways sit.

use std::collections::HashMap;
use std::fmt;

use ethmeter_measure::CampaignData;
use ethmeter_stats::table::{pct, Table};
use ethmeter_types::PoolId;

/// NTP envelope used for the error bars: the paper's "offset under 10ms in
/// 90% of cases".
const NTP_MARGIN_NANOS: u64 = 10_000_000;

/// Figure 2: per-vantage first-observation shares.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoReport {
    /// `(vantage name, share of wins, uncertainty)` — uncertainty is the
    /// fraction of this vantage's wins decided by a margin under the NTP
    /// envelope (could flip under clock error).
    pub per_vantage: Vec<(String, f64, f64)>,
    /// Blocks observed by at least two vantages.
    pub blocks: u64,
}

/// Computes Figure 2.
pub fn geo(data: &CampaignData) -> GeoReport {
    let names: Vec<String> = data.main_observers().map(|(v, _)| v.name.clone()).collect();
    let mut wins = vec![0u64; names.len()];
    let mut narrow_wins = vec![0u64; names.len()];
    let mut blocks = 0u64;
    for block in data.truth.tree.all_blocks() {
        if block.number() == 0 {
            continue;
        }
        let arrivals: Vec<(usize, u64)> = data
            .main_observers()
            .enumerate()
            .filter_map(|(i, (_, log))| {
                log.block(block.hash())
                    .map(|r| (i, r.first_local.as_nanos()))
            })
            .collect();
        if arrivals.len() < 2 {
            continue;
        }
        blocks += 1;
        let (winner, t_first) = arrivals
            .iter()
            .copied()
            .min_by_key(|&(_, t)| t)
            .expect("non-empty");
        wins[winner] += 1;
        let runner_up = arrivals
            .iter()
            .filter(|&&(i, _)| i != winner)
            .map(|&(_, t)| t)
            .min()
            .expect("two arrivals");
        if runner_up - t_first < NTP_MARGIN_NANOS {
            narrow_wins[winner] += 1;
        }
    }
    let per_vantage = names
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            let share = wins[i] as f64 / blocks.max(1) as f64;
            let unc = narrow_wins[i] as f64 / blocks.max(1) as f64;
            (name, share, unc)
        })
        .collect();
    GeoReport {
        per_vantage,
        blocks,
    }
}

impl fmt::Display for GeoReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 — first new-block observations per vantage ({} blocks)",
            self.blocks
        )?;
        let mut t = Table::new(vec!["Vantage", "First observations", "± (NTP)"]);
        for (name, share, unc) in &self.per_vantage {
            t.row(vec![name.clone(), pct(*share), pct(*unc)]);
        }
        writeln!(f, "{t}")?;
        write!(f, "(paper: EA ~40%, NA ~4x less, WE/CE between)")
    }
}

/// One pool's row in Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolFirstObs {
    /// The pool.
    pub pool: PoolId,
    /// Display name.
    pub name: String,
    /// Hash-power share (the percentage in Figure 3's labels).
    pub hash_share: f64,
    /// Blocks from this pool that were raced by ≥2 observers.
    pub blocks: u64,
    /// Win share per vantage, aligned with [`PoolReport::vantages`].
    pub vantage_shares: Vec<f64>,
}

/// Figure 3: first observations split by origin pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolReport {
    /// Vantage names (column order of `vantage_shares`).
    pub vantages: Vec<String>,
    /// Rows, ordered by descending hash share (top pools first).
    pub pools: Vec<PoolFirstObs>,
}

/// Computes Figure 3, keeping the `top_n` pools by hash share and folding
/// the rest into a synthetic "Remaining" row.
pub fn by_pool(data: &CampaignData, top_n: usize) -> PoolReport {
    let vantages: Vec<String> = data.main_observers().map(|(v, _)| v.name.clone()).collect();
    // wins[pool][vantage], blocks[pool]
    let mut wins: HashMap<PoolId, Vec<u64>> = HashMap::new();
    let mut blocks: HashMap<PoolId, u64> = HashMap::new();
    for block in data.truth.tree.all_blocks() {
        if block.number() == 0 {
            continue;
        }
        let arrivals: Vec<(usize, u64)> = data
            .main_observers()
            .enumerate()
            .filter_map(|(i, (_, log))| {
                log.block(block.hash())
                    .map(|r| (i, r.first_local.as_nanos()))
            })
            .collect();
        if arrivals.len() < 2 {
            continue;
        }
        let (winner, _) = arrivals
            .iter()
            .copied()
            .min_by_key(|&(_, t)| t)
            .expect("non-empty");
        let pool = block.miner();
        wins.entry(pool).or_insert_with(|| vec![0; vantages.len()])[winner] += 1;
        *blocks.entry(pool).or_default() += 1;
    }
    // Order pools by hash share descending; fold the tail.
    let mut pool_ids: Vec<PoolId> = blocks.keys().copied().collect();
    pool_ids.sort_by(|a, b| {
        data.truth
            .pool_share(*b)
            .partial_cmp(&data.truth.pool_share(*a))
            .expect("finite shares")
            .then(a.cmp(b))
    });
    let mut pools = Vec::new();
    let mut rest_wins = vec![0u64; vantages.len()];
    let mut rest_blocks = 0u64;
    let mut rest_share = 0.0;
    for (rank, pool) in pool_ids.iter().enumerate() {
        let w = &wins[pool];
        let b = blocks[pool];
        if rank < top_n {
            pools.push(PoolFirstObs {
                pool: *pool,
                name: data.truth.pool_name(*pool),
                hash_share: data.truth.pool_share(*pool),
                blocks: b,
                vantage_shares: w.iter().map(|&x| x as f64 / b.max(1) as f64).collect(),
            });
        } else {
            for (i, &x) in w.iter().enumerate() {
                rest_wins[i] += x;
            }
            rest_blocks += b;
            rest_share += data.truth.pool_share(*pool);
        }
    }
    if rest_blocks > 0 {
        pools.push(PoolFirstObs {
            pool: PoolId(u16::MAX),
            name: "Remaining miners".into(),
            hash_share: rest_share,
            blocks: rest_blocks,
            vantage_shares: rest_wins
                .iter()
                .map(|&x| x as f64 / rest_blocks as f64)
                .collect(),
        });
    }
    PoolReport { vantages, pools }
}

impl fmt::Display for PoolReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3 — first observation per origin pool (rows: pools, cols: vantages)"
        )?;
        let mut headers = vec!["Pool (hash share)".to_owned(), "Blocks".to_owned()];
        headers.extend(self.vantages.iter().cloned());
        let mut t = Table::new(headers);
        for p in &self.pools {
            let mut row = vec![
                format!("{} ({})", p.name, pct(p.hash_share)),
                p.blocks.to_string(),
            ];
            row.extend(p.vantage_shares.iter().map(|&s| pct(s)));
            t.row(row);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn ea_wins_everything_in_synthetic_spread() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let r = geo(&data);
        assert_eq!(r.blocks, testutil::BLOCKS as u64);
        let ea = r
            .per_vantage
            .iter()
            .find(|(n, ..)| n == "EA")
            .expect("EA present");
        assert!((ea.1 - 1.0).abs() < 1e-9, "EA wins all: {}", ea.1);
        // Margin to runner-up is 40ms > 10ms NTP envelope: no uncertainty.
        assert_eq!(ea.2, 0.0);
        let na = r
            .per_vantage
            .iter()
            .find(|(n, ..)| n == "NA")
            .expect("NA present");
        assert_eq!(na.1, 0.0);
    }

    #[test]
    fn narrow_margins_flagged_as_uncertain() {
        // WE trails EA by only 5ms: every EA win is uncertain.
        let data = testutil::campaign_with_block_spread(&[0, 100, 5, 60]);
        let r = geo(&data);
        let ea = r
            .per_vantage
            .iter()
            .find(|(n, ..)| n == "EA")
            .expect("EA present");
        assert!((ea.2 - 1.0).abs() < 1e-9, "uncertainty {}", ea.2);
    }

    #[test]
    fn shares_sum_to_one() {
        let data = testutil::campaign_with_block_spread(&[0, 30, 40, 60]);
        let r = geo(&data);
        let total: f64 = r.per_vantage.iter().map(|(_, s, _)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pool_breakdown_aligns_with_miners() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let r = by_pool(&data, 15);
        // Two pools, alternating blocks; every block won by EA.
        assert_eq!(r.pools.len(), 2);
        assert_eq!(r.pools[0].name, "Ethermine"); // larger share first
        for p in &r.pools {
            assert_eq!(p.blocks, testutil::BLOCKS as u64 / 2);
            let ea_idx = r.vantages.iter().position(|v| v == "EA").expect("EA");
            assert!((p.vantage_shares[ea_idx] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tail_folds_into_remaining() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let r = by_pool(&data, 1);
        assert_eq!(r.pools.len(), 2);
        assert_eq!(r.pools[1].name, "Remaining miners");
        assert_eq!(r.pools[1].blocks, testutil::BLOCKS as u64 / 2);
    }

    #[test]
    fn displays_render() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        assert!(geo(&data).to_string().contains("Figure 2"));
        assert!(by_pool(&data, 15).to_string().contains("Figure 3"));
    }
}
