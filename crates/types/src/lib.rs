//! Shared primitive types for the `ethmeter` workspace.
//!
//! This crate defines the small, dependency-free vocabulary used by every
//! other crate: entity identifiers ([`NodeId`], [`PoolId`], [`TxId`],
//! [`BlockHash`], [`AccountId`]), simulated time ([`SimTime`],
//! [`SimDuration`]), geographic [`Region`]s and byte/bandwidth units.
//!
//! All types are plain newtypes with value semantics: `Copy`, `Eq`, `Ord`,
//! `Hash`, `Debug` and `Display` where meaningful, so they compose cleanly
//! with standard collections and with the deterministic simulator.
//!
//! # Examples
//!
//! ```
//! use ethmeter_types::{SimDuration, SimTime, Region};
//!
//! let start = SimTime::ZERO;
//! let later = start + SimDuration::from_millis(74);
//! assert_eq!((later - start).as_millis_f64(), 74.0);
//! assert_eq!(Region::EasternAsia.abbrev(), "EA");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod region;
pub mod registry;
pub mod smallvec;
pub mod time;
pub mod units;

pub use ids::{AccountId, BlockHash, BlockIdx, BlockNumber, NodeId, Nonce, PoolId, TxId, TxIdx};
pub use region::Region;
pub use registry::{BuildFxHasher, FxHashMap, FxHashSet, Interner};
pub use smallvec::InlineVec;
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, ByteSize, Gas};
