//! Sample summaries: count, mean, standard deviation, extremes, quantiles.

use std::fmt;

/// Descriptive statistics of a finite sample.
///
/// Construction sorts a copy of the data once; quantile queries are then
/// O(1). Quantiles use the nearest-rank (inverted CDF) convention, matching
/// how the paper reports "the propagation delay of the 95% fastest blocks".
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    std_dev: f64,
}

impl Summary {
    /// Builds a summary from any collection of values.
    ///
    /// Non-finite values are rejected to keep downstream math meaningful.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN or infinite.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().collect();
        assert!(
            sorted.iter().all(|v| v.is_finite()),
            "summary input must be finite"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let (mean, std_dev) = moments(&sorted);
        Summary {
            sorted,
            mean,
            std_dev,
        }
    }

    /// Folds another summary's sample into this one.
    ///
    /// Merging is exact: the result is identical to building one summary
    /// from both samples. The moments are recomputed from the merged
    /// *sorted* sample, so the outcome depends only on the combined
    /// multiset of values — never on how per-run summaries were grouped
    /// into merges. That bit-level merge-tree independence is what lets a
    /// parallel sweep produce the same summary at any thread count.
    pub fn merge(&mut self, other: &Summary) {
        self.sorted = crate::cdf::merge_sorted(&self.sorted, &other.sorted);
        let (mean, std_dev) = moments(&self.sorted);
        self.mean = mean;
        self.std_dev = std_dev;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 for an empty sample).
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest value.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty sample")
    }

    /// Largest value.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty sample")
    }

    /// The `q`-quantile for `q` in `[0, 1]`, nearest-rank convention.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// The median (0.5 quantile).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples strictly below `x` (0 for an empty sample).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Borrow the sorted sample (ascending).
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Mean and population standard deviation of an ascending sample.
fn moments(sorted: &[f64]) -> (f64, f64) {
    if sorted.is_empty() {
        return (0.0, 0.0);
    }
    let n = sorted.len() as f64;
    let mean = sorted.iter().sum::<f64>() / n;
    let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Cross-run aggregation of one scalar statistic.
///
/// A grid produces one scalar per run (a median propagation delay, a fork
/// rate, a commit-time percentile); `Aggregate` condenses the per-run
/// values of one grid point into the row a results table prints: mean ±
/// stddev with the spread (min / p50 / p95 / max — the
/// percentile-of-percentiles convention when the scalar is itself a
/// percentile).
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean of the per-run values.
    pub mean: f64,
    /// Population standard deviation of the per-run values.
    pub std_dev: f64,
    /// Smallest per-run value (0 when `runs == 0`).
    pub min: f64,
    /// Median per-run value (0 when `runs == 0`).
    pub p50: f64,
    /// 95th-percentile per-run value (0 when `runs == 0`).
    pub p95: f64,
    /// Largest per-run value (0 when `runs == 0`).
    pub max: f64,
}

impl Aggregate {
    /// Aggregates a set of per-run values.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN or infinite.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        Self::from_summary(&Summary::from_values(values))
    }

    /// Aggregates an already-built summary.
    pub fn from_summary(s: &Summary) -> Self {
        if s.is_empty() {
            return Aggregate {
                runs: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        Aggregate {
            runs: s.count(),
            mean: s.mean(),
            std_dev: s.std_dev(),
            min: s.min(),
            p50: s.median(),
            p95: s.quantile(0.95),
            max: s.max(),
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "{:.3} ± {:.3} (n={}, min {:.3}, p50 {:.3}, p95 {:.3}, max {:.3})",
            self.mean, self.std_dev, self.runs, self.min, self.p50, self.p95, self.max
        )
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.std_dev(),
            self.min(),
            self.median(),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = Summary::from_values((1..=100).map(f64::from));
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.5), 50.0);
        assert_eq!(s.quantile(0.95), 95.0);
        assert_eq!(s.quantile(0.99), 99.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(s.median(), 50.0);
    }

    #[test]
    fn quantile_single_element() {
        let s = Summary::from_values([42.0]);
        for q in [0.0, 0.3, 0.5, 1.0] {
            assert_eq!(s.quantile(q), 42.0);
        }
    }

    #[test]
    fn fraction_below_counts_strictly() {
        let s = Summary::from_values([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(s.fraction_below(1.0), 0.0);
        assert_eq!(s.fraction_below(2.0), 0.25);
        assert_eq!(s.fraction_below(2.5), 0.75);
        assert_eq!(s.fraction_below(10.0), 1.0);
    }

    #[test]
    fn empty_sample_behaviors() {
        let s = Summary::from_values(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.fraction_below(1.0), 0.0);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = Summary::from_values([1.0, f64::NAN]);
    }

    #[test]
    fn display_mentions_count() {
        let s = Summary::from_values([1.0, 2.0]);
        assert!(s.to_string().starts_with("n=2"));
    }

    #[test]
    fn merge_matches_oneshot_bitwise() {
        let a = [2.0, 9.0, 4.0];
        let b = [5.0, 4.0, 7.0, 2.0];
        let mut merged = Summary::from_values(a);
        merged.merge(&Summary::from_values(b));
        let oneshot = Summary::from_values(a.into_iter().chain(b));
        assert_eq!(merged, oneshot);
        assert_eq!(merged.mean().to_bits(), oneshot.mean().to_bits());
        assert_eq!(merged.std_dev().to_bits(), oneshot.std_dev().to_bits());
        // Merge-tree independence: ((a+b)+b) == (a+(b+b)).
        let mut left = Summary::from_values(a);
        left.merge(&Summary::from_values(b));
        left.merge(&Summary::from_values(b));
        let mut bb = Summary::from_values(b);
        bb.merge(&Summary::from_values(b));
        let mut right = Summary::from_values(a);
        right.merge(&bb);
        assert_eq!(left, right);
        // Empty merges are identities in both directions.
        let mut e = Summary::from_values(std::iter::empty());
        e.merge(&oneshot);
        assert_eq!(e, oneshot);
    }

    #[test]
    fn aggregate_condenses_per_run_values() {
        let a = Aggregate::from_values((1..=20).map(f64::from));
        assert_eq!(a.runs, 20);
        assert!((a.mean - 10.5).abs() < 1e-12);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.p50, 10.0);
        assert_eq!(a.p95, 19.0);
        assert_eq!(a.max, 20.0);
        assert!(a.to_string().contains("n=20"));
        let empty = Aggregate::from_values(std::iter::empty());
        assert_eq!(empty.runs, 0);
        assert_eq!(empty.to_string(), "n=0");
    }
}
