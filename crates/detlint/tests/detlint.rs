//! Fixture-corpus and live-workspace tests for the determinism lint.
//!
//! Each fixture under `tests/fixtures/` is a known-bad or known-good
//! snippet for one rule; the corpus pins both that violations are caught
//! and that the idiomatic fixes pass. The final test holds the real
//! workspace to the policy: it must stay lint-clean, with every pragma
//! justified.

use std::path::Path;

use ethmeter_detlint::rules::{check_file, FileCtx, FileKind, FileOutcome, RuleId};
use ethmeter_detlint::{render_json, scan_workspace};

/// Runs one fixture as non-test source on a sim-path crate.
fn check_fixture(name: &str, is_crate_root: bool) -> FileOutcome {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let ctx = FileCtx {
        crate_name: "net".into(),
        kind: FileKind::Source,
        is_crate_root,
    };
    check_file(&ctx, &source)
}

fn lines_of(out: &FileOutcome, rule: RuleId) -> Vec<usize> {
    out.findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn r1_bad_flags_every_default_hasher_site() {
    let out = check_fixture("r1_bad.rs", false);
    assert_eq!(lines_of(&out, RuleId::DefaultHasher), vec![5, 9, 12]);
    assert_eq!(out.findings.len(), 3, "{:?}", out.findings);
}

#[test]
fn r1_good_passes() {
    let out = check_fixture("r1_good.rs", false);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn r2_bad_flags_order_leaking_iteration() {
    let out = check_fixture("r2_bad.rs", false);
    assert_eq!(lines_of(&out, RuleId::UnorderedIter), vec![11]);
    assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
}

#[test]
fn r2_good_passes_sorted_and_commutative_uses() {
    let out = check_fixture("r2_good.rs", false);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn r3_bad_flags_each_entropy_line() {
    let out = check_fixture("r3_bad.rs", false);
    assert_eq!(lines_of(&out, RuleId::Entropy), vec![4, 5, 6]);
    assert_eq!(out.findings.len(), 3, "{:?}", out.findings);
}

#[test]
fn r3_good_passes_with_entropy_only_in_comments() {
    let out = check_fixture("r3_good.rs", false);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn r4_bad_crate_root_misses_header() {
    let out = check_fixture("r4_bad.rs", true);
    assert_eq!(lines_of(&out, RuleId::CrateHygiene), vec![1]);
    assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
}

#[test]
fn r4_good_crate_root_passes() {
    let out = check_fixture("r4_good.rs", true);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn r4_is_not_applied_to_non_roots() {
    let out = check_fixture("r4_bad.rs", false);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn pragmas_suppress_in_both_placements_and_keep_their_reasons() {
    let out = check_fixture("pragma_ok.rs", false);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.allowed.len(), 2, "{:?}", out.allowed);
    assert!(out.allowed.iter().all(|a| a.rule == RuleId::DefaultHasher));
    assert!(out.allowed.iter().all(|a| !a.reason.trim().is_empty()));
    // The line-above reason survives with its parentheses and commas.
    assert!(out.allowed[0].reason.contains("(with parens)"));
}

#[test]
fn malformed_pragmas_do_not_suppress_and_are_reported() {
    let out = check_fixture("pragma_bad.rs", false);
    assert_eq!(lines_of(&out, RuleId::BadPragma), vec![5, 11]);
    // The reasonless pragma must NOT silence the violation it sits on.
    assert_eq!(lines_of(&out, RuleId::DefaultHasher), vec![6]);
    assert!(out.allowed.is_empty(), "{:?}", out.allowed);
}

#[test]
fn stale_pragmas_are_flagged_as_unused() {
    let out = check_fixture("pragma_unused.rs", false);
    assert_eq!(lines_of(&out, RuleId::UnusedPragma), vec![3]);
    assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
}

#[test]
fn live_workspace_is_lint_clean_with_justified_pragmas() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = scan_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {report:?}"
    );
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}: {}", d.file, d.finding.line, d.finding.rule.id()))
        .collect();
    assert!(
        report.is_clean(),
        "workspace has determinism violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        !report.allowed.is_empty(),
        "expected justified pragma sites"
    );
    for a in &report.allowed {
        assert!(
            !a.allowed.reason.trim().is_empty(),
            "pragma without reason at {}:{}",
            a.file,
            a.allowed.line
        );
    }
    let json = render_json(&report);
    assert!(json.starts_with("{\"schema\":\"ethmeter-detlint/v1\""));
    assert!(json.contains("\"diagnostics\":[]"));
}
