//! The chain-only selfish-mining race: profitability without a network.
//!
//! The full [`crate::world::SimWorld`] runs the selfish machine against a
//! real gossip fabric, where the tie-win fraction γ *emerges* from
//! gateway placement. Profitability-threshold curves, however, need tens
//! of thousands of blocks per (α, γ) cell to resolve a crossing — at that
//! scale the network layer is unaffordable and γ must be controlled, not
//! emergent. This runner is the [`crate::chainonly`] counterpart for
//! adversarial mining: block wins are Bernoulli draws by hash power, the
//! attacker drives the *same* [`SelfishState`] machine the world uses,
//! honest miners split tie races by an explicit γ, and both sides
//! reference uncles under the standard rules — reproducing the uncle-
//! aware profitability analysis of Niu & Feng (2019).

use ethmeter_analysis::rewards::{self, RevenueReport};
use ethmeter_chain::block::{Block, BlockBuilder};
use ethmeter_chain::tree::BlockTree;
use ethmeter_chain::uncles::{is_valid_uncle, UnclePolicy, MAX_UNCLES, MAX_UNCLE_DEPTH};
use ethmeter_measure::{CampaignData, GroundTruth};
use ethmeter_mining::{SelfishConfig, SelfishOutcome, SelfishState};
use ethmeter_sim::Xoshiro256;
use ethmeter_types::{BlockHash, FxHashMap, PoolId, SimDuration};

/// The attacker's pool id in race results.
pub const ATTACKER: PoolId = PoolId(0);
/// The aggregated honest network's pool id in race results.
pub const HONEST: PoolId = PoolId(1);

/// Configuration of one chain-only selfish-mining race.
#[derive(Debug, Clone)]
pub struct SelfishRaceConfig {
    /// Attacker hash-power share, in `(0, 1)`.
    pub alpha: f64,
    /// Fraction of honest hash power that mines on the attacker's block
    /// during a tie race, in `[0, 1]`.
    pub gamma: f64,
    /// PoW wins to simulate (attacker + honest together).
    pub blocks: u64,
    /// Seed.
    pub seed: u64,
    /// The withholding machine's parameters.
    pub behavior: SelfishConfig,
}

impl SelfishRaceConfig {
    /// A classic-machine race at the given attacker share and tie-win
    /// fraction.
    pub fn new(alpha: f64, gamma: f64, blocks: u64, seed: u64) -> Self {
        SelfishRaceConfig {
            alpha,
            gamma,
            blocks,
            seed,
            behavior: SelfishConfig::classic(),
        }
    }
}

/// The outcome of one race.
#[derive(Debug, Clone)]
pub struct SelfishRaceResult {
    /// Revenue breakdown over the final public tree (the same
    /// [`rewards`] pipeline full campaigns use).
    pub report: RevenueReport,
    /// Height of the canonical chain at the end.
    pub canonical_height: u64,
    /// Blocks the attacker still held back when the race ended.
    pub unreleased: u64,
    /// Attacker share the race ran at.
    pub alpha: f64,
    /// Tie-win fraction the race ran at.
    pub gamma: f64,
}

impl SelfishRaceResult {
    /// The attacker's relative revenue gain (revenue share ÷ α).
    /// `> 1` means withholding beat honest mining.
    pub fn relative_revenue(&self) -> f64 {
        self.report.relative_revenue(ATTACKER)
    }
}

/// Selects up to [`MAX_UNCLES`] referenceable uncles for a block
/// extending `parent`, from the windowed candidate list (recent-first,
/// hash tie-break — the same order miners use elsewhere).
fn pick_uncles(tree: &BlockTree, recent: &[BlockHash], parent: BlockHash) -> Vec<BlockHash> {
    let mut picked: Vec<(u64, BlockHash)> = recent
        .iter()
        .filter(|&&h| is_valid_uncle(tree, parent, h, UnclePolicy::Standard))
        .map(|&h| (tree.get(h).expect("candidates are attached").number(), h))
        .collect();
    picked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    picked.truncate(MAX_UNCLES);
    picked.into_iter().map(|(_, h)| h).collect()
}

/// Runs the race (deterministic per config).
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1)` or `gamma` outside `[0, 1]`.
pub fn run_selfish_race(cfg: &SelfishRaceConfig) -> SelfishRaceResult {
    assert!(
        cfg.alpha > 0.0 && cfg.alpha < 1.0,
        "alpha must be in (0, 1), got {}",
        cfg.alpha
    );
    assert!(
        (0.0..=1.0).contains(&cfg.gamma),
        "gamma must be in [0, 1], got {}",
        cfg.gamma
    );
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut tree = BlockTree::new();
    let mut state: SelfishState<Block> = SelfishState::new(cfg.behavior, tree.genesis_hash());
    let mut salt = 0u64;
    // Uncle candidates: every public block still inside the depth window.
    let mut recent: Vec<BlockHash> = Vec::new();
    // The attacker's released block currently tied at head height, if any
    // — the branch point γ steers honest miners toward.
    let mut tie: Option<BlockHash> = None;

    let publish = |tree: &mut BlockTree,
                   recent: &mut Vec<BlockHash>,
                   tie: &mut Option<BlockHash>,
                   blocks: Vec<Block>| {
        for block in blocks {
            let hash = block.hash();
            let number = block.number();
            let _ = tree.insert(block);
            recent.push(hash);
            // A released attacker block contesting the head height opens
            // (or refreshes) the tie race.
            if number == tree.head_number() && !tree.is_canonical(hash) {
                *tie = Some(hash);
            }
        }
        // Window the candidate list so uncle scans stay O(1).
        if recent.len() > 4 * MAX_UNCLE_DEPTH as usize {
            let head = tree.head_number();
            let min = head.saturating_sub(MAX_UNCLE_DEPTH + 1);
            recent.retain(|h| tree.get(*h).is_some_and(|b| b.number() >= min));
        }
    };

    for _ in 0..cfg.blocks {
        if rng.chance(cfg.alpha) {
            // Attacker wins: mine at the machine's target. Only a block on
            // a public parent can reference uncles.
            let (parent, number) = state.target();
            let uncles = if tree.contains(parent) {
                pick_uncles(&tree, &recent, parent)
            } else {
                Vec::new()
            };
            salt += 1;
            let block = BlockBuilder::new(parent, number, ATTACKER)
                .uncles(uncles)
                .salt(salt)
                .build();
            let (outcome, released) = state.on_solve(block.hash(), block);
            if outcome == SelfishOutcome::Published {
                tie = None; // the race just ended in the attacker's favor
            }
            publish(&mut tree, &mut recent, &mut tie, released);
        } else {
            // Honest network wins. Validate the tie pointer first: it only
            // steers miners while the contested height is still the head
            // height and the attacker's block hasn't already won.
            if let Some(t) = tie {
                let live = tree
                    .get(t)
                    .is_some_and(|b| b.number() == tree.head_number())
                    && !tree.is_canonical(t);
                if !live {
                    tie = None;
                }
            }
            let parent = match tie {
                Some(t) if rng.chance(cfg.gamma) => t,
                _ => tree.head(),
            };
            let number = tree.get(parent).expect("parent is public").number() + 1;
            let uncles = pick_uncles(&tree, &recent, parent);
            salt += 1;
            let block = BlockBuilder::new(parent, number, HONEST)
                .uncles(uncles)
                .salt(salt)
                .build();
            publish(&mut tree, &mut recent, &mut tie, vec![block]);
            // Feed the machine the (possibly new) head at fork-choice
            // time, exactly as the world's gateway hook does.
            let head = tree.head();
            let head_number = tree.head_number();
            let extends_tip = state.tip().is_some_and(|(tip, tip_number)| {
                head_number >= tip_number && tree.ancestor_at(head, tip_number) == Some(tip)
            });
            let (_, released) = state.on_public_head(head, head_number, extends_tip);
            publish(&mut tree, &mut recent, &mut tie, released);
        }
    }

    let unreleased = (state.branch_len() - state.released_len()) as u64;
    let canonical_height = tree.head_number();
    let data = CampaignData {
        observers: Vec::new(),
        truth: GroundTruth {
            tree,
            txs: FxHashMap::default(),
            pool_names: vec!["Attacker".to_owned(), "Honest network".to_owned()],
            pool_shares: vec![cfg.alpha, 1.0 - cfg.alpha],
            interblock: SimDuration::from_secs_f64(13.3),
            duration: SimDuration::from_secs_f64(13.3) * cfg.blocks,
        },
    };
    SelfishRaceResult {
        report: rewards::analyze(&data),
        canonical_height,
        unreleased,
        alpha: cfg.alpha,
        gamma: cfg.gamma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_is_deterministic() {
        let cfg = SelfishRaceConfig::new(0.3, 0.5, 2_000, 7);
        let a = run_selfish_race(&cfg);
        let b = run_selfish_race(&cfg);
        assert_eq!(a.report, b.report);
        assert_eq!(a.canonical_height, b.canonical_height);
        let c = run_selfish_race(&SelfishRaceConfig::new(0.3, 0.5, 2_000, 8));
        assert_ne!(a.report, c.report, "seeds must diverge");
    }

    #[test]
    fn weak_attacker_loses_revenue() {
        // At α = 0.1 with no tie support, withholding must not pay.
        let r = run_selfish_race(&SelfishRaceConfig::new(0.1, 0.0, 20_000, 1));
        assert!(
            r.relative_revenue() < 1.0,
            "rel {} should be < 1",
            r.relative_revenue()
        );
        // The honest side keeps roughly its fair share.
        let honest = r.report.relative_revenue(HONEST);
        assert!(honest > 1.0, "honest rel {honest}");
    }

    #[test]
    fn strong_attacker_profits() {
        // At α = 0.45 with full tie support, withholding clearly pays.
        let r = run_selfish_race(&SelfishRaceConfig::new(0.45, 1.0, 20_000, 1));
        assert!(
            r.relative_revenue() > 1.0,
            "rel {} should be > 1",
            r.relative_revenue()
        );
    }

    #[test]
    fn gamma_helps_the_attacker() {
        let lo = run_selfish_race(&SelfishRaceConfig::new(0.3, 0.0, 30_000, 3));
        let hi = run_selfish_race(&SelfishRaceConfig::new(0.3, 1.0, 30_000, 3));
        assert!(
            hi.relative_revenue() > lo.relative_revenue(),
            "γ=1 ({}) must beat γ=0 ({})",
            hi.relative_revenue(),
            lo.relative_revenue()
        );
    }

    #[test]
    fn uncles_are_harvested() {
        // A mid-strength attacker orphans blocks on both sides; the uncle
        // channel must be active (that is the Ethereum twist).
        let r = run_selfish_race(&SelfishRaceConfig::new(0.3, 0.5, 20_000, 2));
        let attacker = r.report.row(ATTACKER).expect("attacker earned");
        let honest = r.report.row(HONEST).expect("honest earned");
        assert!(attacker.uncles > 0, "attacker losers become uncles");
        assert!(honest.uncles > 0, "overridden honest blocks become uncles");
        // Chain accounting stays coherent.
        assert!(r.canonical_height > 0);
        assert_eq!(r.report.total_blocks, r.canonical_height);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn invalid_alpha_rejected() {
        let _ = run_selfish_race(&SelfishRaceConfig::new(1.5, 0.0, 10, 1));
    }
}
