//! Entity identifiers.
//!
//! Every actor and artifact in the simulated network is addressed by a
//! compact integer newtype. Using distinct types (rather than bare `u64`s)
//! prevents the classic "passed a transaction id where a block hash was
//! expected" bug at compile time ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw integer value of this identifier.
            #[inline]
            pub fn raw(self) -> $repr {
                self.0
            }

            /// Returns this identifier as a `usize`, for indexing dense
            /// per-entity tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }

        impl From<$name> for $repr {
            fn from(v: $name) -> Self {
                v.0
            }
        }
    };
}

id_newtype!(
    /// Identifier of a network node (peer) in the simulated overlay.
    NodeId,
    u32,
    "node-"
);

id_newtype!(
    /// Identifier of a mining pool (or solo miner).
    ///
    /// The coinbase address of a block maps to exactly one `PoolId`; the
    /// paper identifies pools by their public coinbase tags (Ethermine,
    /// Sparkpool, ...).
    PoolId,
    u16,
    "pool-"
);

id_newtype!(
    /// Identifier of an externally-owned account that submits transactions.
    AccountId,
    u32,
    "acct-"
);

id_newtype!(
    /// Unique identifier of a transaction (stands in for its 32-byte hash).
    TxId,
    u64,
    "tx-"
);

id_newtype!(
    /// Dense interned slot of a block within one campaign.
    ///
    /// Blocks are interned into contiguous `u32` slots at creation time
    /// (see `Interner` / the chain-side registries), so hot-path state can
    /// live in `Vec`-indexed slabs instead of `BlockHash`-keyed hash maps.
    /// A `BlockIdx` is only meaningful relative to the registry that
    /// issued it; [`BlockHash`] remains the stable cross-boundary name.
    BlockIdx,
    u32,
    "blk#"
);

id_newtype!(
    /// Dense interned slot of a transaction within one campaign.
    ///
    /// The simulation driver assigns [`TxId`]s sequentially from 1, so a
    /// transaction's dense slot is `id - 1`; this newtype keeps that
    /// convention explicit at API boundaries.
    TxIdx,
    u32,
    "tx#"
);

/// A block's height in the chain (the `number` field of an Ethereum header).
pub type BlockNumber = u64;

/// A per-sender monotonically increasing transaction sequence number.
///
/// Miners may only include a transaction once all lower nonces from the same
/// sender are included — the mechanism behind the paper's out-of-order
/// commit-delay analysis (§III-C2).
pub type Nonce = u64;

/// Stand-in for a 32-byte Keccak block hash.
///
/// The simulator assigns hashes from a deterministic counter mixed through
/// [`BlockHash::mix`], which keeps them unique, cheap, and stable across
/// runs while still "looking" hash-like in logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockHash(pub u64);

impl BlockHash {
    /// The hash used for the genesis block's parent pointer.
    pub const ZERO: BlockHash = BlockHash(0);

    /// Produces a well-mixed hash from a sequence number.
    ///
    /// Uses the SplitMix64 finalizer, a bijection on `u64`, so distinct
    /// sequence numbers can never collide.
    #[inline]
    pub fn mix(seq: u64) -> BlockHash {
        let mut z = seq.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        BlockHash(z ^ (z >> 31))
    }

    /// Returns the raw integer value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

impl fmt::LowerHex for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(NodeId(7).to_string(), "node-7");
        assert_eq!(PoolId(2).to_string(), "pool-2");
        assert_eq!(TxId(99).to_string(), "tx-99");
        assert_eq!(AccountId(1).to_string(), "acct-1");
    }

    #[test]
    fn id_round_trips_through_raw() {
        let n = NodeId::from(42u32);
        assert_eq!(n.raw(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(n.index(), 42usize);
    }

    #[test]
    fn block_hash_mix_is_injective_on_sample() {
        let mut seen = HashSet::new();
        for seq in 0..10_000u64 {
            assert!(seen.insert(BlockHash::mix(seq)), "collision at {seq}");
        }
    }

    #[test]
    fn block_hash_mix_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = BlockHash::mix(12345).raw();
        let b = BlockHash::mix(12344).raw();
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "poor avalanche: {flipped}");
    }

    #[test]
    fn block_hash_display_is_hex() {
        assert_eq!(BlockHash(0xabcd).to_string(), "0x000000000000abcd");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(BlockHash(5) < BlockHash(9));
    }
}
