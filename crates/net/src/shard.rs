//! Node-to-shard partitioning and the cross-shard event vocabulary of
//! the deterministic parallel engine.
//!
//! The parallel engine replicates the world's *construction* on every
//! shard and partitions its *execution*: each shard processes only the
//! events addressed to entities it owns, and anything destined for a
//! foreign entity is buffered as a [`RemoteEvent`] and exchanged at the
//! next window barrier. Two invariants make that exchange sound:
//!
//! - **Geography-aware, region-atomic ownership.** [`ShardMap::by_region`]
//!   never splits a region across shards, so intra-region gossip — the
//!   bulk of traffic under latency-aware peer selection — stays
//!   shard-local. Regions are packed onto shards by longest-processing-
//!   time-first over node counts; with more shards than populated
//!   regions, the surplus shards legitimately own nothing.
//! - **Hash-addressed payloads.** Dense registry slots (`BlockIdx`) are
//!   shard-local and never cross a shard boundary: remote block
//!   injections travel by [`BlockHash`] and are re-resolved against the
//!   receiver's registry after replica ingestion. Wire [`Message`]s are
//!   already hash/`TxId`-addressed and cross unchanged.

use ethmeter_types::{BlockHash, NodeId, Region, SimTime};

use crate::message::Message;

/// An immutable node → shard ownership table.
///
/// Built once per campaign (every shard derives the identical map from
/// the replicated scenario build) and shared read-only by all workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    owner: Vec<u32>,
    shards: usize,
}

impl ShardMap {
    /// The trivial single-shard map: every node owned by shard 0.
    pub fn single(nodes: usize) -> Self {
        ShardMap {
            owner: vec![0; nodes],
            shards: 1,
        }
    }

    /// Partitions nodes across `shards` workers without ever splitting a
    /// region: regions are sorted by population (largest first, region
    /// index breaking ties) and each is assigned to the least-loaded
    /// shard so far (lowest shard id breaking ties). Deterministic in
    /// its inputs; shards may end up empty when `shards` exceeds the
    /// number of populated regions.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn by_region(regions: &[Region], shards: usize) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        let mut counts = [0usize; Region::COUNT];
        for r in regions {
            counts[r.index()] += 1;
        }
        // LPT over populated regions: largest region first, each onto
        // the currently lightest shard.
        let mut order: Vec<usize> = (0..Region::COUNT).filter(|&i| counts[i] > 0).collect();
        order.sort_by_key(|&i| (usize::MAX - counts[i], i));
        let mut load = vec![0usize; shards];
        let mut region_shard = [0u32; Region::COUNT];
        for i in order {
            let lightest = (0..shards)
                .min_by_key(|&s| (load[s], s))
                .expect("shards > 0");
            region_shard[i] = lightest as u32;
            load[lightest] += counts[i];
        }
        ShardMap {
            owner: regions.iter().map(|r| region_shard[r.index()]).collect(),
            shards,
        }
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not covered by the map.
    #[inline]
    pub fn owner(&self, node: NodeId) -> usize {
        self.owner[node.index()] as usize
    }

    /// True iff `shard` owns `node`.
    #[inline]
    pub fn owns(&self, shard: usize, node: NodeId) -> bool {
        self.owner[node.index()] as usize == shard
    }

    /// Number of shards the map partitions into (including empty ones).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes covered by the map.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// True for a map over zero nodes.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Nodes owned by `shard`.
    pub fn population(&self, shard: usize) -> usize {
        self.owner.iter().filter(|&&o| o as usize == shard).count()
    }
}

/// The payload of one cross-shard event, addressed entirely by hashes
/// and node ids — never by shard-local registry slots.
#[derive(Debug, Clone)]
pub enum RemoteEventKind {
    /// A gossip message crossing the shard boundary.
    Deliver {
        /// Sending node (owned by the emitting shard).
        from: NodeId,
        /// Receiving node (owned by the ingesting shard).
        to: NodeId,
        /// The wire message, hash/`TxId`-addressed and thus portable.
        msg: Message,
    },
    /// A pool's sealed block reaching one of its non-primary gateways
    /// that lives on another shard. The block travels by hash; the
    /// receiver resolves it against its registry after ingesting the
    /// window's replica blocks.
    Inject {
        /// The gateway node (owned by the ingesting shard).
        node: NodeId,
        /// The sealed block's hash.
        block: BlockHash,
    },
}

/// One event emitted for a foreign shard, buffered until the next
/// window barrier.
///
/// `(at, origin, seq)` gives barrier ingestion a total, deterministic
/// order that is independent of worker scheduling: `seq` is the
/// emitting shard's monotone emission counter, so events from one shard
/// ingest in emission order and same-instant events from different
/// shards break ties by origin node.
#[derive(Debug, Clone)]
pub struct RemoteEvent {
    /// Absolute delivery instant (at or after the next window start, by
    /// the conservative-lookahead contract).
    pub at: SimTime,
    /// The node whose handler emitted the event (sort tie-break).
    pub origin: NodeId,
    /// Emission counter within the emitting shard's window.
    pub seq: u64,
    /// What happens at `at`.
    pub kind: RemoteEventKind,
}

impl RemoteEventKind {
    /// The node this event is addressed to; only that node's owner shard
    /// may schedule it.
    pub fn dest(&self) -> NodeId {
        match self {
            RemoteEventKind::Deliver { to, .. } => *to,
            RemoteEventKind::Inject { node, .. } => *node,
        }
    }
}

impl RemoteEvent {
    /// The deterministic barrier ingestion key.
    pub fn sort_key(&self) -> (u64, u32, u64) {
        (self.at.as_nanos(), self.origin.raw(), self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread(n: usize) -> Vec<Region> {
        // Deterministic mixed population across all regions, heavier in
        // the low-index regions (mirrors the default weight skew).
        (0..n)
            .map(|i| Region::ALL[(i * i + i / 3) % Region::COUNT])
            .collect()
    }

    #[test]
    fn regions_are_atomic() {
        let regions = spread(500);
        let map = ShardMap::by_region(&regions, 4);
        // Every node of one region lands on the same shard.
        let mut seen = [None; Region::COUNT];
        for (i, r) in regions.iter().enumerate() {
            let owner = map.owner(NodeId(i as u32));
            match seen[r.index()] {
                None => seen[r.index()] = Some(owner),
                Some(prev) => assert_eq!(prev, owner, "region {r} split across shards"),
            }
        }
    }

    #[test]
    fn lpt_balances_node_counts() {
        let regions = spread(800);
        let map = ShardMap::by_region(&regions, 4);
        let pops: Vec<usize> = (0..4).map(|s| map.population(s)).collect();
        assert_eq!(pops.iter().sum::<usize>(), 800);
        // Region-atomic LPT cannot be perfect, but no shard should hold
        // more than half the network when 8 regions feed 4 shards.
        assert!(pops.iter().all(|&p| p > 0 && p <= 400), "pops {pops:?}");
    }

    #[test]
    fn more_shards_than_regions_leaves_empties() {
        let regions = vec![Region::ALL[0]; 10];
        let map = ShardMap::by_region(&regions, 4);
        assert_eq!(map.population(0), 10);
        assert_eq!(map.population(1) + map.population(2) + map.population(3), 0);
        assert_eq!(map.shards(), 4);
    }

    #[test]
    fn map_is_deterministic_and_single_is_trivial() {
        let regions = spread(300);
        assert_eq!(
            ShardMap::by_region(&regions, 3),
            ShardMap::by_region(&regions, 3)
        );
        let single = ShardMap::single(7);
        assert_eq!(single.len(), 7);
        assert!(!single.is_empty());
        assert!((0..7).all(|i| single.owns(0, NodeId(i))));
    }

    #[test]
    fn remote_event_sort_key_orders_time_origin_seq() {
        let ev = |at: u64, origin: u32, seq: u64| RemoteEvent {
            at: SimTime::from_nanos(at),
            origin: NodeId(origin),
            seq,
            kind: RemoteEventKind::Inject {
                node: NodeId(origin),
                block: BlockHash(1),
            },
        };
        let mut evs = [ev(5, 1, 0), ev(3, 9, 2), ev(3, 2, 7), ev(3, 2, 4)];
        evs.sort_by_key(RemoteEvent::sort_key);
        let keys: Vec<_> = evs.iter().map(|e| e.sort_key()).collect();
        assert_eq!(
            keys,
            vec![(3, 2, 4), (3, 2, 7), (3, 9, 2), (5, 1, 0)],
            "time first, then origin node, then emission order"
        );
    }
}
