//! The per-node protocol state machine.
//!
//! A [`Node`] makes Geth-1.8's gossip decisions: push full blocks to
//! √(peers) immediately on arrival (before import), announce to the rest
//! after import, fetch announced blocks with timeout fallback, and relay
//! fresh transactions. It returns the [`Send`]s it wants performed; the
//! simulation driver applies link latency and schedules delivery, keeping
//! this type synchronous and unit-testable.

use std::collections::HashMap;

use ethmeter_chain::block::Block;
use ethmeter_chain::tx::Transaction;
use ethmeter_chain::uncles::UnclePolicy;
use ethmeter_geo::BandwidthClass;
use ethmeter_sim::Xoshiro256;
use ethmeter_types::{BlockHash, NodeId, Region, TxId};

use crate::config::{NetConfig, TxRelayPolicy};
use crate::headerview::{HeaderInsert, HeaderView};
use crate::known::KnownSet;
use crate::message::Message;
use ethmeter_txpool::Mempool;

/// An outgoing message the driver must deliver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Send {
    /// Destination peer.
    pub to: NodeId,
    /// Payload.
    pub msg: Message,
}

/// Whether the node wants an import scheduled after validation latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportAction {
    /// Schedule `on_import_complete` for this block after validation time.
    Schedule(BlockHash),
    /// Nothing to do (duplicate or unwanted).
    None,
}

/// Result of completing an import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportResult {
    /// Messages to deliver (post-import announcements, parent fetches).
    pub sends: Vec<Send>,
    /// True if the block became the node's head.
    pub new_head: bool,
}

#[derive(Debug, Clone)]
struct FetchState {
    announcers: Vec<NodeId>,
    tried: usize,
}

/// A network node: peer links, chain view, gossip state, and (for miner
/// gateways) a mempool.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    region: Region,
    bandwidth: BandwidthClass,
    peers: Vec<NodeId>,
    peer_known_blocks: HashMap<NodeId, KnownSet<BlockHash>>,
    peer_known_txs: HashMap<NodeId, KnownSet<TxId>>,
    chain: HeaderView,
    seen_txs: KnownSet<TxId>,
    have_body: KnownSet<BlockHash>,
    import_pending: HashMap<BlockHash, Option<NodeId>>,
    fetching: HashMap<BlockHash, FetchState>,
    mempool: Option<Mempool>,
}

impl Node {
    /// Creates a node rooted at `genesis`.
    pub fn new(
        id: NodeId,
        region: Region,
        bandwidth: BandwidthClass,
        genesis: BlockHash,
        cfg: &NetConfig,
    ) -> Self {
        Node {
            id,
            region,
            bandwidth,
            peers: Vec::new(),
            peer_known_blocks: HashMap::new(),
            peer_known_txs: HashMap::new(),
            chain: HeaderView::new(genesis, cfg.header_window),
            seen_txs: KnownSet::with_capacity(cfg.known_txs_cap),
            have_body: KnownSet::with_capacity(4 * cfg.header_window as usize),
            import_pending: HashMap::new(),
            fetching: HashMap::new(),
            mempool: None,
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The node's access-link class.
    pub fn bandwidth(&self) -> BandwidthClass {
        self.bandwidth
    }

    /// The node's header view of the chain.
    pub fn chain(&self) -> &HeaderView {
        &self.chain
    }

    /// Connected peers, in connection order.
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Attaches a mempool (miner gateways and any node that should track
    /// executable transactions).
    pub fn enable_mempool(&mut self) {
        if self.mempool.is_none() {
            self.mempool = Some(Mempool::new());
        }
    }

    /// The node's mempool, if enabled.
    pub fn mempool(&self) -> Option<&Mempool> {
        self.mempool.as_ref()
    }

    /// Registers a bidirectional link (the driver calls this on both ends).
    ///
    /// # Panics
    ///
    /// Panics on self-links or duplicate links.
    pub fn connect(&mut self, peer: NodeId, cfg: &NetConfig) {
        assert_ne!(peer, self.id, "self-link");
        assert!(!self.peers.contains(&peer), "duplicate link to {peer}");
        self.peers.push(peer);
        self.peer_known_blocks
            .insert(peer, KnownSet::with_capacity(cfg.known_blocks_cap));
        self.peer_known_txs
            .insert(peer, KnownSet::with_capacity(cfg.known_txs_cap));
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.peers.len()
    }

    fn mark_peer_knows_block(&mut self, peer: NodeId, hash: BlockHash) {
        if let Some(s) = self.peer_known_blocks.get_mut(&peer) {
            s.insert(hash);
        }
    }

    fn peer_knows_block(&self, peer: NodeId, hash: BlockHash) -> bool {
        self.peer_known_blocks
            .get(&peer)
            .is_some_and(|s| s.contains(hash))
    }

    /// Handles a full block arriving — by unsolicited push (`NewBlock`),
    /// fetch response (`BlockBody`), or local mining (`from = None`).
    ///
    /// Returns the immediate relays (full-block pushes to √(peers)) and
    /// whether to schedule an import.
    pub fn on_block_arrival(
        &mut self,
        from: Option<NodeId>,
        block: &Block,
        cfg: &NetConfig,
        rng: &mut Xoshiro256,
    ) -> (Vec<Send>, ImportAction) {
        let hash = block.hash();
        if let Some(p) = from {
            self.mark_peer_knows_block(p, hash);
        }
        self.fetching.remove(&hash);
        if self.have_body.contains(hash)
            || self.chain.contains(hash)
            || self.import_pending.contains_key(&hash)
        {
            return (Vec::new(), ImportAction::None);
        }
        self.have_body.insert(hash);

        // Relay policy: push recent (head-candidate) blocks; optionally
        // also side blocks within the relay window.
        let head_number = self.chain.head_number();
        let improves = block.number() > head_number;
        let recent = block.number() + cfg.relay_window > head_number;
        let relay = improves || (cfg.relay_non_head && recent);

        let mut sends = Vec::new();
        if relay {
            let candidates: Vec<NodeId> = self
                .peers
                .iter()
                .copied()
                .filter(|&p| Some(p) != from && !self.peer_knows_block(p, hash))
                .collect();
            // Locally produced blocks (miner gateways) are pushed to every
            // peer: pool gateway software floods its own blocks to minimize
            // orphan risk, unlike vanilla Geth's sqrt relay.
            let fanout = if from.is_none() {
                candidates.len()
            } else {
                cfg.push_fanout(self.peers.len()).min(candidates.len())
            };
            let picks = rng.sample_indices(candidates.len(), fanout);
            for i in picks {
                let peer = candidates[i];
                self.mark_peer_knows_block(peer, hash);
                sends.push(Send {
                    to: peer,
                    msg: Message::NewBlock(hash),
                });
            }
        }
        self.import_pending.insert(hash, from);
        (sends, ImportAction::Schedule(hash))
    }

    /// Handles a `NewBlockHashes` announcement: fetch unknown blocks from
    /// the announcer (Geth's fetcher).
    pub fn on_announce(&mut self, from: NodeId, hashes: &[BlockHash]) -> Vec<Send> {
        let mut sends = Vec::new();
        for &hash in hashes {
            self.mark_peer_knows_block(from, hash);
            if self.have_body.contains(hash)
                || self.chain.contains(hash)
                || self.import_pending.contains_key(&hash)
            {
                continue;
            }
            match self.fetching.get_mut(&hash) {
                Some(f) => {
                    if !f.announcers.contains(&from) {
                        f.announcers.push(from);
                    }
                }
                None => {
                    self.fetching.insert(
                        hash,
                        FetchState {
                            announcers: vec![from],
                            tried: 1,
                        },
                    );
                    sends.push(Send {
                        to: from,
                        msg: Message::GetBlock(hash),
                    });
                }
            }
        }
        sends
    }

    /// Fetch timeout: re-request from the next announcer, or give up.
    ///
    /// Returns the re-request (if any); the driver should re-arm the
    /// timeout when a request goes out.
    pub fn on_fetch_timeout(&mut self, hash: BlockHash) -> Vec<Send> {
        if self.have_body.contains(hash) || self.chain.contains(hash) {
            self.fetching.remove(&hash);
            return Vec::new();
        }
        let Some(f) = self.fetching.get_mut(&hash) else {
            return Vec::new();
        };
        if f.tried < f.announcers.len() {
            let next = f.announcers[f.tried];
            f.tried += 1;
            vec![Send {
                to: next,
                msg: Message::GetBlock(hash),
            }]
        } else {
            // Out of announcers: give up; a push may still deliver it.
            self.fetching.remove(&hash);
            Vec::new()
        }
    }

    /// Serves a fetch request if the body is available.
    pub fn on_get_block(&mut self, from: NodeId, hash: BlockHash) -> Vec<Send> {
        if !self.have_body.contains(hash) {
            return Vec::new();
        }
        self.mark_peer_knows_block(from, hash);
        vec![Send {
            to: from,
            msg: Message::BlockBody(hash),
        }]
    }

    /// Completes an import after validation latency: inserts into the
    /// chain view, prunes the mempool, and announces to unknowing peers.
    ///
    /// `included` must be the block's transactions (resolved by the driver
    /// from its registry).
    pub fn on_import_complete(
        &mut self,
        block: &Block,
        included: &[&Transaction],
        cfg: &NetConfig,
    ) -> ImportResult {
        let hash = block.hash();
        let provenance = self.import_pending.remove(&hash).flatten();
        let outcome = self.chain.insert(
            hash,
            block.parent(),
            block.number(),
            block.miner(),
            block.uncles(),
        );
        let mut sends = Vec::new();
        let new_head = matches!(outcome, HeaderInsert::NewHead { .. });

        if outcome == HeaderInsert::Orphaned {
            // Ask whoever gave us the block for its parent (Geth's fetcher
            // backfill). If it was locally mined there is no one to ask.
            if let Some(p) = provenance {
                sends.push(Send {
                    to: p,
                    msg: Message::GetBlock(block.parent()),
                });
            }
            return ImportResult { sends, new_head };
        }

        if let Some(pool) = self.mempool.as_mut() {
            if new_head {
                pool.on_block(included.iter().copied());
            }
        }

        // Post-import announcement to everyone not known to have it.
        let head_number = self.chain.head_number();
        let recent = block.number() + cfg.relay_window > head_number;
        if new_head || (cfg.relay_non_head && recent) {
            let targets: Vec<NodeId> = self
                .peers
                .iter()
                .copied()
                .filter(|&p| !self.peer_knows_block(p, hash))
                .collect();
            for peer in targets {
                self.mark_peer_knows_block(peer, hash);
                sends.push(Send {
                    to: peer,
                    msg: Message::Announce(vec![hash]),
                });
            }
        }
        ImportResult { sends, new_head }
    }

    /// Handles a batch of transactions (`from = None` for local
    /// submissions injected by the workload).
    ///
    /// Returns the relays. Fresh transactions are added to the mempool if
    /// one is enabled.
    pub fn on_transactions(
        &mut self,
        from: Option<NodeId>,
        txs: &[&Transaction],
        cfg: &NetConfig,
        rng: &mut Xoshiro256,
    ) -> Vec<Send> {
        let mut fresh: Vec<TxId> = Vec::new();
        for tx in txs {
            if let Some(p) = from {
                if let Some(s) = self.peer_known_txs.get_mut(&p) {
                    s.insert(tx.id);
                }
            }
            if self.seen_txs.insert(tx.id) {
                fresh.push(tx.id);
                if let Some(pool) = self.mempool.as_mut() {
                    pool.add(tx);
                }
            }
        }
        if fresh.is_empty() {
            return Vec::new();
        }
        // Choose relay targets.
        let candidates: Vec<NodeId> = self
            .peers
            .iter()
            .copied()
            .filter(|&p| Some(p) != from)
            .collect();
        let targets: Vec<NodeId> = match cfg.tx_relay {
            TxRelayPolicy::All => candidates,
            TxRelayPolicy::Sqrt => {
                let fanout = cfg.push_fanout(self.peers.len()).min(candidates.len());
                rng.sample_indices(candidates.len(), fanout)
                    .into_iter()
                    .map(|i| candidates[i])
                    .collect()
            }
        };
        let mut sends = Vec::new();
        for peer in targets {
            let unknown: Vec<TxId> = {
                let known = self
                    .peer_known_txs
                    .get(&peer)
                    .expect("connected peers have known-sets");
                fresh
                    .iter()
                    .copied()
                    .filter(|&t| !known.contains(t))
                    .collect()
            };
            if unknown.is_empty() {
                continue;
            }
            if let Some(s) = self.peer_known_txs.get_mut(&peer) {
                for &t in &unknown {
                    s.insert(t);
                }
            }
            sends.push(Send {
                to: peer,
                msg: Message::Transactions(unknown),
            });
        }
        sends
    }

    /// Builds a mining template from this gateway's view: parent (current
    /// head), next height, uncle references, and packed transactions.
    ///
    /// Returns `(parent, number, uncles, txs)`.
    pub fn mine_template(
        &self,
        policy: UnclePolicy,
        gas_limit: u64,
    ) -> (BlockHash, u64, Vec<BlockHash>, Vec<TxId>) {
        let parent = self.chain.head();
        let number = self.chain.head_number() + 1;
        let uncles = self.chain.select_uncles(parent, policy);
        let txs = self
            .mempool
            .as_ref()
            .map(|m| m.pack(gas_limit))
            .unwrap_or_default();
        (parent, number, uncles, txs)
    }

    /// Set of blocks currently being fetched (for driver timeout wiring).
    pub fn is_fetching(&self, hash: BlockHash) -> bool {
        self.fetching.contains_key(&hash)
    }

    /// True if the node holds (or is importing) this block's body.
    pub fn has_block_body(&self, hash: BlockHash) -> bool {
        self.have_body.contains(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethmeter_chain::block::BlockBuilder;
    use ethmeter_types::{AccountId, ByteSize, PoolId, SimTime};
    use std::collections::HashSet;

    fn cfg() -> NetConfig {
        NetConfig::default()
    }

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(7)
    }

    fn genesis() -> BlockHash {
        BlockHash::mix(0)
    }

    fn node(id: u32, n_peers: u32) -> Node {
        let c = cfg();
        let mut n = Node::new(
            NodeId(id),
            Region::WesternEurope,
            BandwidthClass::Datacenter,
            genesis(),
            &c,
        );
        for p in 0..n_peers {
            if p != id {
                n.connect(NodeId(p), &c);
            }
        }
        n
    }

    fn block1() -> Block {
        BlockBuilder::new(genesis(), 1, PoolId(0))
            .mined_at(SimTime::from_secs(13))
            .build()
    }

    #[test]
    fn push_relays_to_sqrt_peers_and_schedules_import() {
        let mut n = node(99, 25);
        let b = block1();
        let (sends, action) = n.on_block_arrival(Some(NodeId(1)), &b, &cfg(), &mut rng());
        assert_eq!(action, ImportAction::Schedule(b.hash()));
        // sqrt(25) = 5 pushes, never back to the sender.
        assert_eq!(sends.len(), 5);
        assert!(sends.iter().all(|s| s.to != NodeId(1)));
        assert!(sends
            .iter()
            .all(|s| matches!(s.msg, Message::NewBlock(h) if h == b.hash())));
        // Distinct targets.
        let set: HashSet<NodeId> = sends.iter().map(|s| s.to).collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn duplicate_arrivals_do_nothing() {
        let mut n = node(99, 25);
        let b = block1();
        let (_, first) = n.on_block_arrival(Some(NodeId(1)), &b, &cfg(), &mut rng());
        assert!(matches!(first, ImportAction::Schedule(_)));
        let (sends, second) = n.on_block_arrival(Some(NodeId(2)), &b, &cfg(), &mut rng());
        assert!(sends.is_empty());
        assert_eq!(second, ImportAction::None);
    }

    #[test]
    fn import_complete_announces_to_unknowing_peers() {
        let mut n = node(99, 10);
        let b = block1();
        let c = cfg();
        let (pushes, _) = n.on_block_arrival(Some(NodeId(1)), &b, &c, &mut rng());
        let pushed_to: HashSet<NodeId> = pushes.iter().map(|s| s.to).collect();
        let res = n.on_import_complete(&b, &[], &c);
        assert!(res.new_head);
        // Announcements go to everyone who neither sent nor received it.
        let announced: HashSet<NodeId> = res.sends.iter().map(|s| s.to).collect();
        assert!(announced.is_disjoint(&pushed_to));
        assert!(!announced.contains(&NodeId(1)));
        assert_eq!(announced.len(), 9 - pushed_to.len());
        assert!(res
            .sends
            .iter()
            .all(|s| matches!(&s.msg, Message::Announce(v) if v == &vec![b.hash()])));
    }

    #[test]
    fn announce_triggers_single_fetch() {
        let mut n = node(99, 5);
        let b = block1();
        let sends = n.on_announce(NodeId(1), &[b.hash()]);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].to, NodeId(1));
        assert!(matches!(sends[0].msg, Message::GetBlock(h) if h == b.hash()));
        assert!(n.is_fetching(b.hash()));
        // Second announcer recorded, no second request.
        let sends = n.on_announce(NodeId(2), &[b.hash()]);
        assert!(sends.is_empty());
        // Timeout falls over to the second announcer.
        let retry = n.on_fetch_timeout(b.hash());
        assert_eq!(retry.len(), 1);
        assert_eq!(retry[0].to, NodeId(2));
        // Exhausted announcers: gives up.
        let give_up = n.on_fetch_timeout(b.hash());
        assert!(give_up.is_empty());
        assert!(!n.is_fetching(b.hash()));
    }

    #[test]
    fn fetch_resolves_on_arrival() {
        let mut n = node(99, 5);
        let b = block1();
        n.on_announce(NodeId(1), &[b.hash()]);
        let (_, action) = n.on_block_arrival(Some(NodeId(1)), &b, &cfg(), &mut rng());
        assert!(matches!(action, ImportAction::Schedule(_)));
        assert!(!n.is_fetching(b.hash()));
        assert!(n.on_fetch_timeout(b.hash()).is_empty());
    }

    #[test]
    fn get_block_served_only_when_held() {
        let mut n = node(99, 5);
        let b = block1();
        assert!(n.on_get_block(NodeId(1), b.hash()).is_empty());
        n.on_block_arrival(Some(NodeId(2)), &b, &cfg(), &mut rng());
        let resp = n.on_get_block(NodeId(1), b.hash());
        assert_eq!(resp.len(), 1);
        assert!(matches!(resp[0].msg, Message::BlockBody(h) if h == b.hash()));
    }

    #[test]
    fn orphan_import_requests_parent() {
        let mut n = node(99, 5);
        let c = cfg();
        // Block at height 2 whose parent (height 1) we never saw.
        let b1 = block1();
        let b2 = BlockBuilder::new(b1.hash(), 2, PoolId(0)).build();
        let (_, action) = n.on_block_arrival(Some(NodeId(3)), &b2, &c, &mut rng());
        assert!(matches!(action, ImportAction::Schedule(_)));
        let res = n.on_import_complete(&b2, &[], &c);
        assert!(!res.new_head);
        assert_eq!(res.sends.len(), 1);
        assert_eq!(res.sends[0].to, NodeId(3));
        assert!(matches!(res.sends[0].msg, Message::GetBlock(h) if h == b1.hash()));
    }

    #[test]
    fn transactions_relay_to_all_unknowing_peers() {
        let mut n = node(99, 6);
        let c = cfg();
        let tx = Transaction {
            id: TxId(1),
            sender: AccountId(1),
            nonce: 0,
            gas_price: 5,
            gas: 21_000,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(0),
        };
        let sends = n.on_transactions(Some(NodeId(1)), &[&tx], &c, &mut rng());
        // 5 peers other than the sender.
        assert_eq!(sends.len(), 5);
        // Replay: nothing fresh, nothing sent.
        assert!(n
            .on_transactions(Some(NodeId(2)), &[&tx], &c, &mut rng())
            .is_empty());
    }

    #[test]
    fn sqrt_tx_relay_caps_fanout() {
        let mut n = node(99, 25);
        let mut c = cfg();
        c.tx_relay = TxRelayPolicy::Sqrt;
        let tx = Transaction {
            id: TxId(2),
            sender: AccountId(1),
            nonce: 0,
            gas_price: 5,
            gas: 21_000,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(0),
        };
        let sends = n.on_transactions(None, &[&tx], &c, &mut rng());
        assert_eq!(sends.len(), 5); // sqrt(25) = 5
    }

    #[test]
    fn mempool_integration_and_mining_template() {
        let mut n = node(99, 3);
        n.enable_mempool();
        let c = cfg();
        let tx0 = Transaction {
            id: TxId(1),
            sender: AccountId(1),
            nonce: 0,
            gas_price: 5,
            gas: 21_000,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(99),
        };
        n.on_transactions(None, &[&tx0], &c, &mut rng());
        assert_eq!(n.mempool().expect("enabled").len(), 1);

        let (parent, number, uncles, txs) = n.mine_template(UnclePolicy::Standard, 8_000_000);
        assert_eq!(parent, genesis());
        assert_eq!(number, 1);
        assert!(uncles.is_empty());
        assert_eq!(txs, vec![TxId(1)]);

        // A block including tx0 prunes it from the mempool.
        let b = BlockBuilder::new(genesis(), 1, PoolId(0))
            .txs(vec![TxId(1)])
            .build();
        n.on_block_arrival(None, &b, &c, &mut rng());
        let res = n.on_import_complete(&b, &[&tx0], &c);
        assert!(res.new_head);
        assert_eq!(n.mempool().expect("enabled").len(), 0);
    }

    #[test]
    fn locally_mined_block_pushes_to_all_peers() {
        let mut n = node(99, 9);
        let b = block1();
        let (sends, action) = n.on_block_arrival(None, &b, &cfg(), &mut rng());
        assert!(matches!(action, ImportAction::Schedule(_)));
        // Gateway flood: every peer, not just sqrt.
        assert_eq!(sends.len(), 9);
    }

    #[test]
    fn stale_side_blocks_not_relayed_when_policy_off() {
        let mut n = node(99, 9);
        let mut c = cfg();
        c.relay_non_head = false;
        // Advance the node's head far beyond 1 by importing a chain.
        let mut parent = genesis();
        for i in 1..=10u64 {
            let b = BlockBuilder::new(parent, i, PoolId(0)).salt(i).build();
            parent = b.hash();
            n.on_block_arrival(Some(NodeId(1)), &b, &c, &mut rng());
            n.on_import_complete(&b, &[], &c);
        }
        assert_eq!(n.chain().head_number(), 10);
        // A late fork block at height 1 does not improve the head and is
        // outside the relay window: no pushes.
        let stale = BlockBuilder::new(genesis(), 1, PoolId(5)).salt(99).build();
        let (sends, action) = n.on_block_arrival(Some(NodeId(2)), &stale, &c, &mut rng());
        assert!(sends.is_empty());
        // It is still imported (valid block), just not relayed.
        assert!(matches!(action, ImportAction::Schedule(_)));
    }
}
