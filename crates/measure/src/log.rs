//! Observer logs: what one instrumented node recorded.
//!
//! Memory note: the paper kept 600 GB of raw per-message logs. We keep the
//! same information in aggregated form — per block: the first reception
//! (time/kind/peer) plus reception counters by kind; per transaction: the
//! first reception. This is lossless for every analysis in §III and keeps
//! month-scale simulations in memory. Raw per-message streams can be
//! reconstructed for small runs via the `csv` module's record export.

use std::sync::Arc;

use ethmeter_types::{BlockHash, FxHashMap, NodeId, SimTime, TxId};

use crate::spill::{self, BlockSegment, SpillConfig, TxSegment};

/// How a block reached the observer (Table II's two message families).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockMsgKind {
    /// `NewBlockHashes` — hash-only announcement.
    Announce,
    /// `NewBlock` or `BlockBody` — header + body ("whole block").
    FullBlock,
}

/// Aggregated reception record of one block at one observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRecord {
    /// The block.
    pub hash: BlockHash,
    /// First reception, observer's local (NTP-skewed) clock.
    pub first_local: SimTime,
    /// First reception, true simulation clock (ground truth; the real
    /// experiment does not have this column).
    pub first_true: SimTime,
    /// Kind of the first reception.
    pub first_kind: BlockMsgKind,
    /// Peer that delivered the first message.
    pub first_from: NodeId,
    /// Total announcements received (including the first, if it was one).
    pub announces: u32,
    /// Total whole-block messages received.
    pub full_blocks: u32,
}

impl BlockRecord {
    /// All receptions of this block.
    pub fn total_receptions(&self) -> u32 {
        self.announces + self.full_blocks
    }
}

/// First-reception record of one transaction at one observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRecord {
    /// The transaction.
    pub id: TxId,
    /// First reception, local clock.
    pub first_local: SimTime,
    /// First reception, true clock.
    pub first_true: SimTime,
    /// Delivering peer (the observer itself for locally submitted txs).
    pub from: NodeId,
    /// Sequence number of this first-reception among the observer's tx
    /// arrivals (0-based) — makes out-of-order analysis independent of
    /// timestamp ties.
    pub arrival_seq: u64,
}

/// Estimated resident bytes of one block map entry (record + key + hash
/// table overhead) — the unit of the spill budget accounting.
pub const BLOCK_ENTRY_BYTES: usize = 64;

/// Estimated resident bytes of one tx map entry.
pub const TX_ENTRY_BYTES: usize = 56;

/// [`ObserverLog::clear`] drops (rather than retains) map allocations
/// whose estimated capacity exceeds this, so one planet-sized campaign
/// cannot pin its peak measurement heap across later small jobs on a
/// reused runner.
pub const MAX_RETAINED_BYTES: usize = 1 << 20;

/// Out-of-core state of a budgeted log: its spill policy plus the
/// immutable segments flushed so far (shared by reference with any
/// clones, e.g. extracted campaign data).
#[derive(Debug, Clone)]
struct SpillState {
    config: SpillConfig,
    block_segments: Vec<Arc<BlockSegment>>,
    tx_segments: Vec<Arc<TxSegment>>,
}

/// Everything one observer recorded.
#[derive(Debug, Clone, Default)]
pub struct ObserverLog {
    /// Keyed through `FxHasher64`: recording happens once per delivered
    /// message at every observer, and block/tx ids are already well-mixed
    /// 64-bit values, so the default SipHash is pure overhead. Nothing
    /// iterates these maps for output without sorting first.
    blocks: FxHashMap<BlockHash, BlockRecord>,
    txs: FxHashMap<TxId, TxRecord>,
    tx_arrivals: u64,
    /// `Some` iff this log spills to disk once `record_bytes()` crosses
    /// half the budget. The flush decision is a pure function of the
    /// record stream (estimated byte counts), never of allocator state,
    /// so segment boundaries are deterministic.
    spill: Option<SpillState>,
    /// Distinct blocks across segments and the live map (only maintained
    /// under spill; equals `blocks.len()` otherwise).
    distinct_blocks: usize,
    /// High-water mark of [`ObserverLog::retained_bytes`].
    peak_bytes: usize,
}

impl ObserverLog {
    /// Creates an empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty log that spills under `config`'s budget.
    pub fn with_spill(config: SpillConfig) -> Self {
        let mut log = Self::default();
        log.set_spill(Some(config));
        log
    }

    /// Switches the backend: `Some` enables spilling (budget per
    /// [`SpillConfig`]), `None` reverts to purely in-memory. Must only be
    /// called on an empty (new or cleared) log.
    pub fn set_spill(&mut self, config: Option<SpillConfig>) {
        assert!(
            self.blocks.is_empty() && self.txs.is_empty(),
            "spill backend must be configured before recording"
        );
        self.spill = config.map(|config| SpillState {
            config,
            block_segments: Vec::new(),
            tx_segments: Vec::new(),
        });
    }

    /// True if this log spills to disk under a budget.
    pub fn is_spilling(&self) -> bool {
        self.spill.is_some()
    }

    /// Estimated resident bytes of the live record maps — the quantity
    /// the spill budget bounds.
    fn record_bytes(&self) -> usize {
        self.blocks.len() * BLOCK_ENTRY_BYTES + self.txs.len() * TX_ENTRY_BYTES
    }

    /// Estimated resident bytes of everything this log retains: map
    /// capacity plus (under spill) the per-segment key filters. The
    /// filters cost 8 bytes per distinct key and are what exact
    /// deduplication across segments needs; they are *not* counted
    /// against the flush budget (flushing cannot shrink them).
    pub fn retained_bytes(&self) -> usize {
        let mut bytes =
            self.blocks.capacity() * BLOCK_ENTRY_BYTES + self.txs.capacity() * TX_ENTRY_BYTES;
        if let Some(sp) = &self.spill {
            for s in &sp.block_segments {
                bytes += s.rows() * 8;
            }
            for s in &sp.tx_segments {
                bytes += s.rows() * 8;
            }
        }
        bytes
    }

    /// High-water mark of [`ObserverLog::retained_bytes`] over this log's
    /// life (since construction or the last [`ObserverLog::clear`]).
    pub fn peak_mem_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of segments flushed to disk so far.
    pub fn spilled_segments(&self) -> usize {
        self.spill
            .as_ref()
            .map_or(0, |sp| sp.block_segments.len() + sp.tx_segments.len())
    }

    /// Post-record bookkeeping: track the heap high-water mark, then
    /// flush if the live maps crossed *half* the budget. Half, because
    /// the budget bounds resident bytes and [`ObserverLog::retained_bytes`]
    /// counts map *capacity*, which can sit at ~2x the live length right
    /// after a hash-map doubling — draining at `budget / 2` keeps the
    /// capacity peak itself within the budget, not within 2x of it.
    fn after_record(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.retained_bytes());
        if let Some(sp) = &self.spill {
            if self.record_bytes() >= (sp.config.budget_bytes / 2).max(1) {
                self.flush();
            }
        }
    }

    /// Drains the live maps into one new sorted columnar segment each
    /// (skipping empty maps). File names are `{prefix}.blk{seq:04}.seg` /
    /// `{prefix}.txs{seq:04}.seg` under the configured spill dir.
    fn flush(&mut self) {
        let sp = self.spill.as_mut().expect("flush requires spill config");
        if !self.blocks.is_empty() {
            let mut rows: Vec<BlockRecord> = self.blocks.drain().map(|(_, r)| r).collect();
            rows.sort_unstable_by_key(|r| r.hash);
            let name = format!("{}.blk{:04}.seg", sp.config.prefix, sp.block_segments.len());
            sp.block_segments
                .push(BlockSegment::write(&sp.config.dir, &name, &rows));
        }
        if !self.txs.is_empty() {
            let mut rows: Vec<TxRecord> = self.txs.drain().map(|(_, r)| r).collect();
            rows.sort_unstable_by_key(|r| r.id);
            let name = format!("{}.txs{:04}.seg", sp.config.prefix, sp.tx_segments.len());
            sp.tx_segments
                .push(TxSegment::write(&sp.config.dir, &name, &rows));
        }
    }

    /// Records a block-bearing or announcement message.
    pub fn record_block_msg(
        &mut self,
        hash: BlockHash,
        kind: BlockMsgKind,
        from: NodeId,
        local: SimTime,
        true_time: SimTime,
    ) {
        let fresh = !self.blocks.contains_key(&hash);
        let entry = self.blocks.entry(hash).or_insert(BlockRecord {
            hash,
            first_local: local,
            first_true: true_time,
            first_kind: kind,
            first_from: from,
            announces: 0,
            full_blocks: 0,
        });
        match kind {
            BlockMsgKind::Announce => entry.announces += 1,
            BlockMsgKind::FullBlock => entry.full_blocks += 1,
        }
        // Defensive: receptions may be recorded out of true-time order only
        // if the driver misbehaves; keep the earliest. Under spill, a
        // reception after a flush starts a *delta* record; the scan merge
        // folds deltas back under this same earliest-wins rule.
        if true_time < entry.first_true {
            entry.first_true = true_time;
            entry.first_local = local;
            entry.first_kind = kind;
            entry.first_from = from;
        }
        if fresh {
            if let Some(sp) = &self.spill {
                if !sp.block_segments.iter().any(|s| s.contains(hash)) {
                    self.distinct_blocks += 1;
                }
            }
        }
        self.after_record();
    }

    /// Records a transaction reception (only the first one is kept).
    pub fn record_tx(&mut self, id: TxId, from: NodeId, local: SimTime, true_time: SimTime) {
        if self.txs.contains_key(&id) {
            return;
        }
        if let Some(sp) = &self.spill {
            // Already flushed to a segment: still a duplicate. The filter
            // check keeps `arrival_seq` assignment identical to the
            // in-memory backend.
            if sp.tx_segments.iter().any(|s| s.contains(id)) {
                return;
            }
        }
        let seq = self.tx_arrivals;
        self.tx_arrivals += 1;
        self.txs.insert(
            id,
            TxRecord {
                id,
                first_local: local,
                first_true: true_time,
                from,
                arrival_seq: seq,
            },
        );
        self.after_record();
    }

    /// The live (in-memory) record of a block, if present. Under spill,
    /// flushed blocks are not visible here — use
    /// [`ObserverLog::scan_blocks`] for complete reads.
    pub fn block(&self, hash: BlockHash) -> Option<&BlockRecord> {
        self.blocks.get(&hash)
    }

    /// The live (in-memory) record of a transaction, if present. Under
    /// spill, flushed txs are not visible here — use
    /// [`ObserverLog::scan_txs`] for complete reads.
    pub fn tx(&self, id: TxId) -> Option<&TxRecord> {
        self.txs.get(&id)
    }

    /// Number of distinct blocks observed (across segments and the live
    /// map).
    pub fn block_count(&self) -> usize {
        match &self.spill {
            Some(_) => self.distinct_blocks,
            None => self.blocks.len(),
        }
    }

    /// Number of distinct transactions observed (across segments and the
    /// live map; ids are globally deduplicated, so segment rows are
    /// disjoint).
    pub fn tx_count(&self) -> usize {
        let spilled: usize = self
            .spill
            .as_ref()
            .map_or(0, |sp| sp.tx_segments.iter().map(|s| s.rows()).sum());
        spilled + self.txs.len()
    }

    /// Streams every block record in ascending hash order, merging
    /// spilled segments with the live map. This is **the** iteration API:
    /// both backends yield the bit-identical sequence for the same record
    /// stream, so analyses built on it never see the difference.
    pub fn scan_blocks(&self) -> spill::BlockScan {
        let mut mem: Vec<BlockRecord> = self.blocks.values().copied().collect();
        mem.sort_unstable_by_key(|r| r.hash);
        let segs: &[Arc<BlockSegment>] = self
            .spill
            .as_ref()
            .map_or(&[], |sp| sp.block_segments.as_slice());
        spill::merge_block_scan(segs, mem)
    }

    /// Streams every transaction record in ascending id order, merging
    /// spilled segments with the live map (counterpart of
    /// [`ObserverLog::scan_blocks`]).
    pub fn scan_txs(&self) -> spill::TxScan {
        let mut mem: Vec<TxRecord> = self.txs.values().copied().collect();
        mem.sort_unstable_by_key(|r| r.id);
        let segs: &[Arc<TxSegment>] = self
            .spill
            .as_ref()
            .map_or(&[], |sp| sp.tx_segments.as_slice());
        spill::merge_tx_scan(segs, mem)
    }

    /// Iterates over live block records (arbitrary, but deterministic,
    /// order; excludes spilled rows — prefer [`ObserverLog::scan_blocks`]).
    pub fn blocks(&self) -> impl Iterator<Item = &BlockRecord> + '_ {
        // detlint::allow(unordered-iter, reason = "documented-unordered accessor over an FxHashMap (deterministic per process); goldens pin the observable results and consumers sort or fold commutatively")
        self.blocks.values()
    }

    /// Iterates over live transaction records (arbitrary, but
    /// deterministic, order; excludes spilled rows — prefer
    /// [`ObserverLog::scan_txs`]).
    pub fn txs(&self) -> impl Iterator<Item = &TxRecord> + '_ {
        // detlint::allow(unordered-iter, reason = "documented-unordered accessor over an FxHashMap (deterministic per process); goldens pin the observable results and consumers sort or fold commutatively")
        self.txs.values()
    }

    /// Forgets every record and drops this log's spill segments (their
    /// files are unlinked once no extracted campaign references them). A
    /// cleared log behaves exactly like a new in-memory one.
    ///
    /// Shrink policy: map allocations above [`MAX_RETAINED_BYTES`] are
    /// released rather than retained, so a reused
    /// [`CampaignRunner`](../core) that just finished a planet-scale job
    /// does not pin that job's measurement heap under later small jobs.
    pub fn clear(&mut self) {
        if self.blocks.capacity() * BLOCK_ENTRY_BYTES + self.txs.capacity() * TX_ENTRY_BYTES
            > MAX_RETAINED_BYTES
        {
            self.blocks = FxHashMap::default();
            self.txs = FxHashMap::default();
        } else {
            self.blocks.clear();
            self.txs.clear();
        }
        self.tx_arrivals = 0;
        self.spill = None;
        self.distinct_blocks = 0;
        self.peak_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn spill_cfg(tag: &str, budget: usize) -> SpillConfig {
        SpillConfig {
            dir: std::env::temp_dir().join(format!("ethmeter-log-test-{tag}")),
            budget_bytes: budget,
            prefix: format!("obs-{tag}"),
        }
    }

    /// Replays a deterministic mixed record stream into `log`.
    fn replay(log: &mut ObserverLog, n: u64) {
        for i in 0..n {
            let h = BlockHash(i % 97);
            let kind = if i % 3 == 0 {
                BlockMsgKind::Announce
            } else {
                BlockMsgKind::FullBlock
            };
            log.record_block_msg(h, kind, NodeId((i % 11) as u32), t(i + 1), t(i));
            log.record_tx(TxId(i % 301), NodeId((i % 7) as u32), t(i + 2), t(i + 1));
            // Duplicate tx receptions must be ignored on both backends.
            log.record_tx(TxId(i % 301), NodeId(99), t(0), t(0));
        }
    }

    #[test]
    fn spilled_log_scans_bit_identical_to_in_memory() {
        let mut mem = ObserverLog::new();
        replay(&mut mem, 2_000);
        // A budget this small forces many flushes mid-stream.
        let mut spilled = ObserverLog::with_spill(spill_cfg("ident", 2_048));
        replay(&mut spilled, 2_000);
        assert!(spilled.spilled_segments() > 2, "budget must actually spill");
        let a: Vec<BlockRecord> = mem.scan_blocks().collect();
        let b: Vec<BlockRecord> = spilled.scan_blocks().collect();
        assert_eq!(a, b);
        let at: Vec<TxRecord> = mem.scan_txs().collect();
        let bt: Vec<TxRecord> = spilled.scan_txs().collect();
        assert_eq!(at, bt);
        assert_eq!(mem.block_count(), spilled.block_count());
        assert_eq!(mem.tx_count(), spilled.tx_count());
        // Scans are ascending by key on both backends.
        assert!(a.windows(2).all(|w| w[0].hash < w[1].hash));
        assert!(at.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn scan_matches_the_unordered_accessors_in_memory() {
        let mut log = ObserverLog::new();
        replay(&mut log, 500);
        let mut via_accessor: Vec<BlockRecord> = log.blocks().copied().collect();
        via_accessor.sort_unstable_by_key(|r| r.hash);
        let via_scan: Vec<BlockRecord> = log.scan_blocks().collect();
        assert_eq!(via_scan, via_accessor);
    }

    #[test]
    fn spill_bounds_live_records_and_tracks_peak() {
        let budget = 4_096;
        let mut log = ObserverLog::with_spill(spill_cfg("budget", budget));
        replay(&mut log, 3_000);
        // The live maps never hold more than one record past the budget.
        let live = log.blocks.len() * BLOCK_ENTRY_BYTES + log.txs.len() * TX_ENTRY_BYTES;
        assert!(live < budget + BLOCK_ENTRY_BYTES.max(TX_ENTRY_BYTES));
        assert!(log.peak_mem_bytes() >= log.retained_bytes());
        assert!(log.is_spilling());
    }

    #[test]
    fn clear_releases_oversized_maps_and_spill_state() {
        let mut log = ObserverLog::new();
        // Grow the maps well past the retention cap.
        for i in 0..40_000u64 {
            log.record_tx(TxId(i), NodeId(1), t(i), t(i));
        }
        assert!(log.retained_bytes() > MAX_RETAINED_BYTES);
        log.clear();
        assert!(
            log.retained_bytes() <= MAX_RETAINED_BYTES,
            "clear must release oversized measurement buffers, retained {}",
            log.retained_bytes()
        );
        assert_eq!(log.peak_mem_bytes(), 0);
        assert_eq!(log.tx_count(), 0);

        // A small log keeps its allocation (cheap reuse path).
        let mut small = ObserverLog::new();
        for i in 0..100u64 {
            small.record_tx(TxId(i), NodeId(1), t(i), t(i));
        }
        let cap = small.txs.capacity();
        small.clear();
        assert_eq!(small.txs.capacity(), cap);

        // Clearing a spilled log drops its segments (files unlink).
        let mut sp = ObserverLog::with_spill(spill_cfg("clear", 1_024));
        replay(&mut sp, 1_000);
        assert!(sp.spilled_segments() > 0);
        sp.clear();
        assert_eq!(sp.spilled_segments(), 0);
        assert!(!sp.is_spilling());
    }

    #[test]
    fn extracted_clone_outlives_source_clear() {
        // take_campaign clones logs and then resets the world; the clone
        // must keep its segment files alive until it is dropped.
        let mut log = ObserverLog::with_spill(spill_cfg("extract", 1_024));
        replay(&mut log, 1_200);
        let extracted = log.clone();
        let before: Vec<BlockRecord> = extracted.scan_blocks().collect();
        log.clear();
        let after: Vec<BlockRecord> = extracted.scan_blocks().collect();
        assert_eq!(before, after);
        assert!(!before.is_empty());
    }

    #[test]
    fn first_reception_wins() {
        let mut log = ObserverLog::new();
        let h = BlockHash(1);
        log.record_block_msg(h, BlockMsgKind::Announce, NodeId(1), t(10), t(11));
        log.record_block_msg(h, BlockMsgKind::FullBlock, NodeId(2), t(20), t(21));
        let r = log.block(h).expect("recorded");
        assert_eq!(r.first_kind, BlockMsgKind::Announce);
        assert_eq!(r.first_from, NodeId(1));
        assert_eq!(r.first_true, t(11));
        assert_eq!(r.announces, 1);
        assert_eq!(r.full_blocks, 1);
        assert_eq!(r.total_receptions(), 2);
    }

    #[test]
    fn out_of_order_recording_keeps_earliest() {
        let mut log = ObserverLog::new();
        let h = BlockHash(2);
        log.record_block_msg(h, BlockMsgKind::FullBlock, NodeId(2), t(20), t(21));
        log.record_block_msg(h, BlockMsgKind::Announce, NodeId(1), t(10), t(11));
        let r = log.block(h).expect("recorded");
        assert_eq!(r.first_true, t(11));
        assert_eq!(r.first_kind, BlockMsgKind::Announce);
    }

    #[test]
    fn tx_first_only() {
        let mut log = ObserverLog::new();
        log.record_tx(TxId(5), NodeId(1), t(1), t(2));
        log.record_tx(TxId(5), NodeId(9), t(0), t(0)); // ignored duplicate
        log.record_tx(TxId(6), NodeId(2), t(3), t(4));
        assert_eq!(log.tx_count(), 2);
        let r5 = log.tx(TxId(5)).expect("recorded");
        assert_eq!(r5.from, NodeId(1));
        assert_eq!(r5.arrival_seq, 0);
        let r6 = log.tx(TxId(6)).expect("recorded");
        assert_eq!(r6.arrival_seq, 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut log = ObserverLog::new();
        let h = BlockHash(3);
        for i in 0..7 {
            log.record_block_msg(
                h,
                BlockMsgKind::FullBlock,
                NodeId(i),
                t(i as u64),
                t(i as u64),
            );
        }
        for i in 0..3 {
            log.record_block_msg(h, BlockMsgKind::Announce, NodeId(10 + i), t(50), t(50));
        }
        let r = log.block(h).expect("recorded");
        assert_eq!(r.full_blocks, 7);
        assert_eq!(r.announces, 3);
        assert_eq!(log.block_count(), 1);
    }
}
