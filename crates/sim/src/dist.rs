//! Probability distributions used by the network and mining models.
//!
//! Each distribution is a small value type with a `sample(&mut Xoshiro256)`
//! method. Implementations use standard textbook transforms (inverse CDF,
//! Marsaglia polar) so they are auditable without external references.
//!
//! | Distribution | Used for |
//! |---|---|
//! | [`Exp`] | inter-block mining times, burst gaps |
//! | [`Normal`] | clock-offset core, misc. noise |
//! | [`LogNormal`] | latency jitter, block validation times |
//! | [`Zipf`] | transaction-sender activity skew |
//! | [`Poisson`] | per-interval arrival counts |
//! | [`Mixture2`] | NTP offsets (tight core + heavy tail) |

use crate::rng::Xoshiro256;
use ethmeter_types::SimDuration;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with the given rate (events per
    /// unit time).
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is finite and positive.
    pub fn with_rate(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "exponential rate must be positive, got {lambda}"
        );
        Exp { lambda }
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exp { lambda: 1.0 / mean }
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.lambda
    }

    /// Draws a sample (inverse-CDF method).
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        -rng.next_f64_open().ln() / self.lambda
    }

    /// Draws a sample interpreted as seconds and converts it to a
    /// [`SimDuration`].
    #[inline]
    pub fn sample_duration(&self, rng: &mut Xoshiro256) -> SimDuration {
        SimDuration::from_secs_f64(self.sample(rng))
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters ({mean}, {std_dev})"
        );
        Normal { mean, std_dev }
    }

    /// Draws a sample using the Marsaglia polar method.
    pub fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

/// Log-normal distribution, parameterized by the underlying normal's
/// `mu`/`sigma` (i.e. `exp(N(mu, sigma))`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal from the underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            norm: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal with the given *median* (`exp(mu)`) and shape
    /// `sigma`. The median parameterization is the natural one for latency:
    /// "median jitter 1.0×, occasionally much larger".
    ///
    /// # Panics
    ///
    /// Panics if `median` is not positive or `sigma` is negative.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(
            median.is_finite() && median > 0.0,
            "log-normal median must be positive, got {median}"
        );
        LogNormal::new(median.ln(), sigma)
    }

    /// Draws a sample.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Zipf distribution on ranks `1..=n` with exponent `s`.
///
/// Used for transaction-sender activity: a few accounts (exchanges,
/// token contracts) emit most traffic, which is what makes same-sender
/// nonce races — and hence out-of-order arrivals — common (§III-C2).
///
/// Sampling is by inverted CDF over precomputed cumulative weights, O(log n)
/// per draw.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is only a single rank (always sampled).
    pub fn is_empty(&self) -> bool {
        false // by construction n > 0
    }

    /// Draws a 0-based rank (0 is the most popular).
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Sampling uses Knuth's product method for small means and a normal
/// approximation above 30 (adequate for workload batching).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "Poisson mean must be positive, got {lambda}"
        );
        Poisson { lambda }
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        if self.lambda < 30.0 {
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction.
            let n = Normal::new(self.lambda, self.lambda.sqrt());
            n.sample(rng).round().max(0.0) as u64
        }
    }
}

/// A two-component mixture: with probability `p_tail` sample from `tail`,
/// otherwise from `core`.
///
/// Models the paper's NTP error characterization: "offsets lesser than 10 ms
/// in 90% of cases and lesser than 100 ms in 99% of cases" — a tight core
/// plus a rare heavy tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mixture2 {
    core: Normal,
    tail: Normal,
    p_tail: f64,
}

impl Mixture2 {
    /// Creates a mixture of two normals.
    ///
    /// # Panics
    ///
    /// Panics if `p_tail` is outside `[0, 1]`.
    pub fn new(core: Normal, tail: Normal, p_tail: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_tail),
            "mixture probability must be in [0,1], got {p_tail}"
        );
        Mixture2 { core, tail, p_tail }
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        if rng.chance(self.p_tail) {
            self.tail.sample(rng)
        } else {
            self.core.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn exponential_moments() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let d = Exp::with_mean(13.3);
        let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 13.3).abs() < 0.15, "mean {mean}");
        // Var = mean^2 for exponential.
        assert!(
            (var - 13.3 * 13.3).abs() / (13.3 * 13.3) < 0.05,
            "var {var}"
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_rate_and_mean_agree() {
        let a = Exp::with_rate(0.5);
        let b = Exp::with_mean(2.0);
        assert_eq!(a, b);
        assert!((a.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exponential_duration_sampling() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let d = Exp::with_mean(1.0);
        let dur = d.sample_duration(&mut rng);
        assert!(dur > SimDuration::ZERO);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let d = Normal::new(5.0, 2.0);
        let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn degenerate_normal_is_constant() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let d = Normal::new(7.0, 0.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.0);
        }
    }

    #[test]
    fn lognormal_median() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let d = LogNormal::with_median(10.0, 0.5);
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = samples[samples.len() / 2];
        assert!((median - 10.0).abs() < 0.3, "median {median}");
        assert!(samples[0] > 0.0);
    }

    #[test]
    fn zipf_rank_ordering() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let d = Zipf::new(100, 1.1);
        assert_eq!(d.len(), 100);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        // Rank 0 strictly more popular than rank 10, which beats rank 90.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Everything in range.
        assert_eq!(counts.iter().sum::<usize>(), 100_000);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let d = Zipf::new(10, 0.0);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..=11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let d = Poisson::new(3.0);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 3.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_large_mean_uses_gaussian_branch() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let d = Poisson::new(120.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 120.0).abs() < 0.5, "mean {mean}");
        assert!((var - 120.0).abs() < 5.0, "var {var}");
    }

    #[test]
    fn mixture_matches_ntp_spec() {
        // 90% of offsets under 10ms, 99% under 100ms (paper §II).
        let mut rng = Xoshiro256::seed_from_u64(10);
        let core = Normal::new(0.0, 4.0); // ms
        let tail = Normal::new(0.0, 40.0); // ms
        let mix = Mixture2::new(core, tail, 0.1);
        let mut under10 = 0usize;
        let mut under100 = 0usize;
        let n = 100_000;
        for _ in 0..n {
            let x = mix.sample(&mut rng).abs();
            if x < 10.0 {
                under10 += 1;
            }
            if x < 100.0 {
                under100 += 1;
            }
        }
        let f10 = under10 as f64 / n as f64;
        let f100 = under100 as f64 / n as f64;
        assert!(f10 > 0.85 && f10 < 0.97, "P(<10ms) = {f10}");
        assert!(f100 > 0.985, "P(<100ms) = {f100}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_rejects_zero_rate() {
        let _ = Exp::with_rate(0.0);
    }

    #[test]
    fn exp_extreme_rates_convert_without_wrapping() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        // A rate of one event per ~32 simulated years stays representable
        // (u64 nanoseconds cover ~584 years): every draw must convert to
        // a finite, positive duration.
        let sparse = Exp::with_rate(1e-9);
        for _ in 0..1_000 {
            let d = sparse.sample_duration(&mut rng);
            assert!(d > SimDuration::ZERO && d < SimDuration::MAX);
        }
        // An ultra-high rate truncates many draws to the same nanosecond
        // but must never go negative or panic.
        let dense = Exp::with_rate(1e12);
        for _ in 0..1_000 {
            let d = dense.sample_duration(&mut rng);
            assert!(d < SimDuration::from_micros(10));
        }
    }

    // At truly degenerate rates the mean exceeds the representable range;
    // the checked conversion must clamp to `SimDuration::MAX` (debug
    // builds assert instead, so this contract only executes in release).
    #[cfg(not(debug_assertions))]
    #[test]
    fn exp_degenerate_rate_saturates_in_release() {
        let mut rng = Xoshiro256::seed_from_u64(32);
        let glacial = Exp::with_rate(1e-30);
        let mut saw_max = false;
        for _ in 0..64 {
            let d = glacial.sample_duration(&mut rng);
            saw_max |= d == SimDuration::MAX;
        }
        assert!(saw_max, "expected at least one clamped draw");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
