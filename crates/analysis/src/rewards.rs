//! Per-pool revenue: block + uncle rewards vs hash-power share.
//!
//! The economics behind every adversarial behavior the paper documents —
//! and the yardstick of the selfish-mining experiments: a strategy "pays"
//! exactly when a pool's *revenue share* exceeds its *hash-power share*
//! (relative revenue gain > 1). Revenue follows the post-Constantinople
//! schedule in [`ethmeter_chain::rewards`]: 2 ETH per canonical block,
//! `(8-k)/8` of that for a gap-`k` uncle, `1/32` per referenced uncle for
//! the nephew, plus a flat per-transaction fee.

use std::collections::BTreeMap;
use std::fmt;

use ethmeter_chain::rewards::{tx_fees, uncle_reward, MilliEther, BLOCK_REWARD, NEPHEW_REWARD};
use ethmeter_measure::CampaignData;
use ethmeter_stats::table::{pct, Table};
use ethmeter_types::PoolId;

use crate::Reduce;

/// One pool's revenue line.
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueRow {
    /// The pool.
    pub pool: PoolId,
    /// Display name.
    pub name: String,
    /// Hash-power share.
    pub hash_share: f64,
    /// Canonical blocks mined.
    pub blocks: u64,
    /// Blocks credited as uncles (referenced by a canonical block).
    pub uncles: u64,
    /// Total revenue, in milli-ether.
    pub reward: MilliEther,
}

impl RevenueRow {
    /// This pool's slice of the total revenue issued.
    pub fn revenue_share(&self, total: MilliEther) -> f64 {
        self.reward as f64 / total.max(1) as f64
    }

    /// Revenue share divided by hash-power share — the profitability
    /// statistic of the selfish-mining literature. `> 1` means the pool
    /// earns more than its fair share.
    pub fn relative_revenue(&self, total: MilliEther) -> f64 {
        if self.hash_share <= 0.0 {
            return 0.0;
        }
        self.revenue_share(total) / self.hash_share
    }
}

/// The per-pool revenue breakdown of one (or many merged) campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueReport {
    /// Per-pool rows, ordered by descending hash share (ties by id).
    pub rows: Vec<RevenueRow>,
    /// Canonical blocks credited.
    pub total_blocks: u64,
    /// Total revenue issued, in milli-ether.
    pub total_reward: MilliEther,
}

impl RevenueReport {
    /// The row of one pool, if it earned anything.
    pub fn row(&self, pool: PoolId) -> Option<&RevenueRow> {
        self.rows.iter().find(|r| r.pool == pool)
    }

    /// Relative revenue gain of one pool (0 when it never earned).
    pub fn relative_revenue(&self, pool: PoolId) -> f64 {
        self.row(pool)
            .map_or(0.0, |r| r.relative_revenue(self.total_reward))
    }
}

/// Computes the revenue breakdown of one campaign.
pub fn analyze(data: &CampaignData) -> RevenueReport {
    let mut acc = Rewards::new();
    acc.observe(data);
    acc.finish()
}

/// Streaming revenue reduction across campaigns (per-pool tallies only;
/// the campaign is dropped after each observe).
#[derive(Debug, Clone, Default)]
pub struct Rewards {
    /// Per-pool `(canonical blocks, uncles credited, reward)`.
    pools: BTreeMap<PoolId, (u64, u64, MilliEther)>,
    total_blocks: u64,
    total_reward: MilliEther,
    pool_names: Vec<String>,
    pool_shares: Vec<f64>,
}

impl Rewards {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Reduce for Rewards {
    type Report = RevenueReport;

    fn observe(&mut self, data: &CampaignData) {
        if self.pool_names.is_empty() {
            self.pool_names = data.truth.pool_names.clone();
            self.pool_shares = data.truth.pool_shares.clone();
        } else {
            assert!(
                self.pool_names == data.truth.pool_names
                    && self.pool_shares == data.truth.pool_shares,
                "revenue reduction requires a stable pool directory"
            );
        }
        let tree = &data.truth.tree;
        // The reward schedule is consensus-dependent: engines without
        // uncle semantics (pure longest-chain) pay no nephew or uncle
        // rewards — blocks and fees only.
        let uncles_pay = tree.consensus().rewards_uncles();
        for block in tree.canonical_blocks() {
            if block.number() == 0 {
                continue;
            }
            self.total_blocks += 1;
            let entry = self.pools.entry(block.miner()).or_default();
            entry.0 += 1;
            let nephew = if uncles_pay {
                NEPHEW_REWARD * block.uncles().len() as MilliEther
            } else {
                0
            };
            let reward = BLOCK_REWARD + nephew + tx_fees(block.txs().len());
            entry.2 += reward;
            self.total_reward += reward;
            if !uncles_pay {
                continue;
            }
            // Uncle credits: only references from canonical blocks pay.
            for &u in block.uncles() {
                let Some(uncle) = tree.get(u) else {
                    continue;
                };
                let credit = uncle_reward(block.number(), uncle.number());
                let e = self.pools.entry(uncle.miner()).or_default();
                e.1 += 1;
                e.2 += credit;
                self.total_reward += credit;
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (pool, (b, u, r)) in other.pools {
            let e = self.pools.entry(pool).or_default();
            e.0 += b;
            e.1 += u;
            e.2 += r;
        }
        self.total_blocks += other.total_blocks;
        self.total_reward += other.total_reward;
        if self.pool_names.is_empty() {
            self.pool_names = other.pool_names;
            self.pool_shares = other.pool_shares;
        } else if !other.pool_names.is_empty() {
            assert!(
                self.pool_names == other.pool_names && self.pool_shares == other.pool_shares,
                "revenue reduction requires a stable pool directory"
            );
        }
    }

    fn finish(self) -> RevenueReport {
        let share = |pool: PoolId| self.pool_shares.get(pool.index()).copied().unwrap_or(0.0);
        let mut ids: Vec<PoolId> = self.pools.keys().copied().collect();
        ids.sort_by(|a, b| {
            share(*b)
                .partial_cmp(&share(*a))
                .expect("finite")
                .then(a.cmp(b))
        });
        let rows = ids
            .into_iter()
            .map(|pool| {
                let (blocks, uncles, reward) = self.pools[&pool];
                RevenueRow {
                    pool,
                    name: self
                        .pool_names
                        .get(pool.index())
                        .cloned()
                        .unwrap_or_else(|| pool.to_string()),
                    hash_share: share(pool),
                    blocks,
                    uncles,
                    reward,
                }
            })
            .collect();
        RevenueReport {
            rows,
            total_blocks: self.total_blocks,
            total_reward: self.total_reward,
        }
    }
}

impl fmt::Display for RevenueReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Revenue — {} canonical blocks, {} mETH issued",
            self.total_blocks, self.total_reward
        )?;
        let mut t = Table::new(vec![
            "Pool",
            "Hash share",
            "Blocks",
            "Uncles",
            "Reward (mETH)",
            "Rev share",
            "Rel. revenue",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                pct(r.hash_share),
                r.blocks.to_string(),
                r.uncles.to_string(),
                r.reward.to_string(),
                pct(r.revenue_share(self.total_reward)),
                format!("{:.3}", r.relative_revenue(self.total_reward)),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use ethmeter_chain::block::BlockBuilder;
    use ethmeter_chain::tree::BlockTree;
    use ethmeter_types::{SimTime, TxId};

    /// genesis -> a1 -> a2(ref u1) -> a3; u1 is pool 1's orphan at height
    /// 1; a-blocks are pool 0's, a1 carries two transactions.
    fn campaign() -> CampaignData {
        let mut tree = BlockTree::new();
        let g = tree.genesis_hash();
        let a1 = BlockBuilder::new(g, 1, PoolId(0))
            .mined_at(SimTime::from_secs(13))
            .txs(vec![TxId(1), TxId(2)])
            .salt(1)
            .build();
        let a1h = a1.hash();
        tree.insert(a1).expect("ok");
        let u1 = BlockBuilder::new(g, 1, PoolId(1)).salt(2).build();
        let u1h = u1.hash();
        tree.insert(u1).expect("ok");
        let a2 = BlockBuilder::new(a1h, 2, PoolId(0))
            .uncles(vec![u1h])
            .salt(3)
            .build();
        let a2h = a2.hash();
        tree.insert(a2).expect("ok");
        let a3 = BlockBuilder::new(a2h, 3, PoolId(0)).salt(4).build();
        tree.insert(a3).expect("ok");
        CampaignData {
            observers: vec![],
            truth: testutil::truth(tree, Default::default()),
        }
    }

    #[test]
    fn schedule_is_applied_exactly() {
        let r = analyze(&campaign());
        assert_eq!(r.total_blocks, 3);
        let ethermine = r.row(PoolId(0)).expect("mined");
        let spark = r.row(PoolId(1)).expect("uncled");
        // Pool 0: three blocks + one nephew bonus + 2 tx fees.
        assert_eq!(
            ethermine.reward,
            3 * BLOCK_REWARD + NEPHEW_REWARD + tx_fees(2)
        );
        assert_eq!(ethermine.blocks, 3);
        assert_eq!(ethermine.uncles, 0);
        // Pool 1: one gap-1 uncle (7/8 of a block reward).
        assert_eq!(spark.reward, uncle_reward(2, 1));
        assert_eq!(spark.uncles, 1);
        assert_eq!(spark.blocks, 0);
        assert_eq!(r.total_reward, ethermine.reward + spark.reward);
    }

    #[test]
    fn relative_revenue_compares_to_hash_share() {
        let r = analyze(&campaign());
        // Pool 0 (55% hash) won everything but the uncle: rel > 1.
        assert!(r.relative_revenue(PoolId(0)) > 1.0);
        // Pool 1 (45% hash) got only an uncle: rel < 1.
        let rel = r.relative_revenue(PoolId(1));
        assert!(rel > 0.0 && rel < 1.0, "rel {rel}");
        // Unknown pools earn nothing.
        assert_eq!(r.relative_revenue(PoolId(9)), 0.0);
    }

    #[test]
    fn streamed_reduction_matches_one_shot() {
        let data = campaign();
        let single = analyze(&data);
        let mut left = Rewards::new();
        left.observe(&data);
        let mut right = Rewards::new();
        right.observe(&data);
        left.merge(right);
        let doubled = left.finish();
        assert_eq!(doubled.total_blocks, 2 * single.total_blocks);
        assert_eq!(doubled.total_reward, 2 * single.total_reward);
        // Shares are unchanged by doubling identical campaigns.
        let a = single.relative_revenue(PoolId(0));
        let b = doubled.relative_revenue(PoolId(0));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn display_renders() {
        let s = analyze(&campaign()).to_string();
        assert!(s.contains("Revenue"));
        assert!(s.contains("Rel. revenue"));
    }

    #[test]
    #[should_panic(expected = "stable pool directory")]
    fn changing_directory_mid_reduction_rejected() {
        let a = campaign();
        let mut b = campaign();
        b.truth.pool_shares[0] = 0.9;
        let mut acc = Rewards::new();
        acc.observe(&a);
        acc.observe(&b);
    }
}
