//! Calibration-band tests: the simulated network must land in generous
//! bands around the paper's observations. These are *shape* tests — the
//! reproduction's contract is who wins and by roughly what factor, not
//! exact numbers (EXPERIMENTS.md records the precise comparisons).

use ethmeter::analysis::{commit, empty_blocks, first_observation, forks, redundancy};
use ethmeter::prelude::*;

/// One shared 40-minute campaign (larger than the end-to-end tests so the
/// statistics settle), reused across assertions.
fn campaign() -> CampaignData {
    let scenario = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(2020)
        .duration(SimDuration::from_mins(40))
        .build();
    run_campaign(&scenario).campaign
}

#[test]
fn calibration_bands() {
    let data = campaign();

    // --- Table II shape: whole blocks dominate announcements; totals in
    // the regime of ~9 receptions per block at 25 peers.
    let t2 = redundancy::analyze(&data).expect("redundancy observer present");
    assert!(
        t2.whole_blocks.avg > t2.announcements.avg,
        "paper: direct propagation dominates ({} vs {})",
        t2.whole_blocks.avg,
        t2.announcements.avg
    );
    assert!(
        (4.0..=18.0).contains(&t2.combined.avg),
        "combined receptions {}",
        t2.combined.avg
    );

    // --- Figure 2 shape: Eastern Asia + Europe dominate; North America
    // trails (paper: EA ~40%, NA ~4x less).
    let fig2 = first_observation::geo(&data);
    let share = |name: &str| {
        fig2.per_vantage
            .iter()
            .find(|(n, ..)| n == name)
            .map(|(_, s, _)| *s)
            .expect("vantage present")
    };
    assert!(
        share("EA") > share("NA"),
        "EA {} must beat NA {}",
        share("EA"),
        share("NA")
    );
    assert!(share("NA") < 0.30, "NA share {}", share("NA"));

    // --- Commit delay: the 12-confirmation median sits around
    // 12-16 inter-block times (paper: 189s ~ 14.2 blocks).
    let fig4 = commit::analyze(&data);
    let median12 = fig4.median_commit_12().expect("12-conf data");
    assert!(
        (140.0..=280.0).contains(&median12),
        "median 12-conf {median12}s"
    );

    // --- Ordering: some committed transactions arrive out of order, and
    // out-of-order ones commit no faster in the median (paper: 11.54%,
    // 192s vs 189s).
    let fig5 = commit::ordering(&data);
    assert!(
        fig5.ooo_fraction > 0.01,
        "out-of-order fraction {}",
        fig5.ooo_fraction
    );
    if !fig5.out_of_order.is_empty() && !fig5.in_order.is_empty() {
        assert!(
            fig5.out_of_order.quantile(0.5) >= fig5.in_order.quantile(0.5) - 20.0,
            "OOO commit should not be substantially faster"
        );
    }

    // --- Empty blocks: a small but nonzero fraction (paper: 1.45%).
    let fig6 = empty_blocks::analyze(&data, 15);
    assert!(
        (0.002..=0.08).contains(&fig6.empty_fraction()),
        "empty fraction {}",
        fig6.empty_fraction()
    );

    // --- Forks: a few percent of blocks fork; length-1 dominates; forks
    // longer than 1 are never recognized (structural).
    let t3 = forks::analyze(&data);
    let census = t3.census;
    let fork_fraction = 1.0 - census.main_fraction();
    assert!(
        (0.01..=0.15).contains(&fork_fraction),
        "fork fraction {fork_fraction}"
    );
    for &(len, _, recognized, _) in &t3.table.rows {
        if len >= 2 {
            assert_eq!(recognized, 0, "length-{len} forks can never be recognized");
        }
    }
}

#[test]
fn zhizhu_mines_empty_nanopool_does_not() {
    // Figure 6's headline contrast, checked over the pools' own blocks.
    let data = campaign();
    let fig6 = empty_blocks::analyze(&data, 17);
    if let Some(zhizhu) = fig6.rows.iter().find(|r| r.name == "Zhizhu") {
        if zhizhu.blocks >= 8 {
            assert!(
                zhizhu.empty_fraction() > 0.05,
                "Zhizhu empty fraction {}",
                zhizhu.empty_fraction()
            );
        }
    }
    // Nanopool's strategy never mines empty deliberately. Scaled blocks
    // hold ~10 transactions, so a block can come out empty *naturally*
    // when the mempool just cleared — accept a small residue while
    // requiring the deliberate miner to stand clearly apart.
    if let (Some(nano), Some(zhizhu)) = (
        fig6.rows.iter().find(|r| r.name == "Nanopool"),
        fig6.rows.iter().find(|r| r.name == "Zhizhu"),
    ) {
        assert!(
            nano.empty_fraction() < 0.06,
            "Nanopool empty fraction {}",
            nano.empty_fraction()
        );
        if zhizhu.blocks >= 8 && nano.blocks >= 8 {
            assert!(
                zhizhu.empty_fraction() > nano.empty_fraction(),
                "Zhizhu {} vs Nanopool {}",
                zhizhu.empty_fraction(),
                nano.empty_fraction()
            );
        }
    }
}

#[test]
fn propagation_has_geographic_spread() {
    let data = campaign();
    let fig1 = ethmeter::analysis::propagation::analyze(&data);
    // Cross-continent observers cannot agree within a few ms; nor should
    // the spread exceed a second in a connected overlay.
    assert!(
        (5.0..=150.0).contains(&fig1.delays.median()),
        "median spread {}ms",
        fig1.delays.median()
    );
    assert!(
        fig1.delays.quantile(0.99) < 1_000.0,
        "p99 spread {}ms",
        fig1.delays.quantile(0.99)
    );
}
