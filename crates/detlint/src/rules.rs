//! The determinism rule catalog and the per-file checking engine.
//!
//! Rules operate on the lexer's blanked *code view*, so comments and
//! string literals can never trip them. Every rule reports
//! `file:line: rule-id: message` positions; suppression is only possible
//! through an allow pragma carrying a written reason (see
//! [`crate::lexer::Pragma`]), and a pragma that suppresses nothing is
//! itself a diagnostic — allow-lists must not rot.

use crate::lexer::{lex, CodeView};

/// The rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// R1: default-`RandomState` `HashMap`/`HashSet` on a sim-path crate.
    DefaultHasher,
    /// R2: unordered iteration over a hash-based map/set whose result is
    /// neither sorted nor folded commutatively.
    UnorderedIter,
    /// R3: wall-clock or OS entropy on the simulation path.
    Entropy,
    /// R4: crate roots must carry the workspace lint header.
    CrateHygiene,
    /// A pragma that did not parse, named an unknown rule, or lacked a
    /// reason.
    BadPragma,
    /// A well-formed pragma that suppressed nothing.
    UnusedPragma,
}

impl RuleId {
    /// The stable string id used in diagnostics, pragmas, and JSON.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::DefaultHasher => "default-hasher",
            RuleId::UnorderedIter => "unordered-iter",
            RuleId::Entropy => "entropy",
            RuleId::CrateHygiene => "crate-hygiene",
            RuleId::BadPragma => "bad-pragma",
            RuleId::UnusedPragma => "unused-pragma",
        }
    }

    /// Parses a pragma rule id. Only the four policy rules can be
    /// allowed; the pragma-hygiene rules cannot suppress themselves.
    pub fn from_pragma_id(id: &str) -> Option<RuleId> {
        match id {
            "default-hasher" => Some(RuleId::DefaultHasher),
            "unordered-iter" => Some(RuleId::UnorderedIter),
            "entropy" => Some(RuleId::Entropy),
            "crate-hygiene" => Some(RuleId::CrateHygiene),
            _ => None,
        }
    }

    /// Every rule, for `detlint rules` and the docs.
    pub fn all() -> &'static [RuleId] {
        &[
            RuleId::DefaultHasher,
            RuleId::UnorderedIter,
            RuleId::Entropy,
            RuleId::CrateHygiene,
            RuleId::BadPragma,
            RuleId::UnusedPragma,
        ]
    }

    /// One-line description for the rule catalog.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::DefaultHasher => {
                "sim-path crates must not build default-hasher HashMap/HashSet \
                 (RandomState seeds differ per process); use FxHashMap/FxHashSet, \
                 BTreeMap, or an explicit hasher"
            }
            RuleId::UnorderedIter => {
                "iteration over a hash-based map/set must be sorted or folded \
                 commutatively before it can influence output"
            }
            RuleId::Entropy => {
                "no wall-clock or OS entropy (Instant::now, SystemTime, thread_rng, \
                 rand::random, std::env) outside bench/criterion-shim"
            }
            RuleId::CrateHygiene => {
                "crate roots must carry #![forbid(unsafe_code)] and #![warn(missing_docs)]"
            }
            RuleId::BadPragma => "allow pragmas must name a known rule and carry a reason",
            RuleId::UnusedPragma => "allow pragmas that suppress nothing must be removed",
        }
    }
}

/// Crates whose code feeds simulation results: R1/R2 apply here.
pub const SIM_PATH_CRATES: &[&str] = &[
    "types", "net", "chain", "core", "sim", "txpool", "mining", "geo", "workload", "stats",
    "analysis", "measure",
];

/// Crates allowed to read clocks/entropy/environment: the bench harness
/// times real work, and the criterion shim is the timing harness itself.
pub const ENTROPY_EXEMPT_CRATES: &[&str] = &["bench", "criterion-shim"];

/// What kind of file is being checked (derived from its path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library/binary source: all rules apply.
    Source,
    /// Under a `tests/` directory: R1–R3 do not apply.
    Test,
    /// Under a `benches/` directory: R1–R3 do not apply.
    Bench,
    /// Under an `examples/` directory: R1–R3 do not apply.
    Example,
}

/// Per-file context the rules need.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Short crate directory name (`net`, `chain`, `ethmeter` for the
    /// facade, ...).
    pub crate_name: String,
    /// Path-derived kind.
    pub kind: FileKind,
    /// True for `src/lib.rs` of a workspace member (R4 target).
    pub is_crate_root: bool,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

/// One suppressed diagnostic (pragma-allowed, with its reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowedSite {
    /// 1-based line of the suppressed diagnostic.
    pub line: usize,
    /// The rule that would have fired.
    pub rule: RuleId,
    /// The pragma's written justification.
    pub reason: String,
}

/// Result of checking one file.
#[derive(Debug, Clone, Default)]
pub struct FileOutcome {
    /// Diagnostics that survived pragma filtering (sorted by line).
    pub findings: Vec<Finding>,
    /// Diagnostics suppressed by a pragma (sorted by line).
    pub allowed: Vec<AllowedSite>,
}

/// Checks one file against every applicable rule.
pub fn check_file(ctx: &FileCtx, source: &str) -> FileOutcome {
    let view = lex(source);
    let test_lines = test_region_lines(&view);
    let policy_active = ctx.kind == FileKind::Source;
    let sim_path = SIM_PATH_CRATES.contains(&ctx.crate_name.as_str());
    let entropy_exempt = ENTROPY_EXEMPT_CRATES.contains(&ctx.crate_name.as_str());

    let mut raw: Vec<Finding> = Vec::new();
    if policy_active && sim_path {
        raw.extend(rule_default_hasher(&view, &test_lines));
        raw.extend(rule_unordered_iter(&view, &test_lines));
    }
    if policy_active && !entropy_exempt {
        raw.extend(rule_entropy(&view, &test_lines));
    }
    if ctx.is_crate_root {
        raw.extend(rule_crate_hygiene(&view));
    }

    // Pragma application: a pragma on line P covers lines P and P + 1.
    let mut findings = Vec::new();
    let mut allowed = Vec::new();
    let mut pragma_used = vec![false; view.pragmas.len()];
    for f in raw {
        let mut suppressed = false;
        for (pi, p) in view.pragmas.iter().enumerate() {
            let Some(rule) = RuleId::from_pragma_id(&p.rule) else {
                continue;
            };
            if rule == f.rule && (p.line == f.line || p.line + 1 == f.line) {
                allowed.push(AllowedSite {
                    line: f.line,
                    rule: f.rule,
                    reason: p.reason.clone(),
                });
                pragma_used[pi] = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }

    // Pragma hygiene.
    for e in &view.pragma_errors {
        findings.push(Finding {
            line: e.line,
            rule: RuleId::BadPragma,
            message: e.message.clone(),
        });
    }
    for (pi, p) in view.pragmas.iter().enumerate() {
        if RuleId::from_pragma_id(&p.rule).is_none() {
            findings.push(Finding {
                line: p.line,
                rule: RuleId::BadPragma,
                message: format!("pragma names unknown rule `{}`", p.rule),
            });
        } else if !pragma_used[pi] {
            findings.push(Finding {
                line: p.line,
                rule: RuleId::UnusedPragma,
                message: format!(
                    "allow pragma for `{}` suppresses nothing on this or the next line",
                    p.rule
                ),
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    allowed.sort_by_key(|a| (a.line, a.rule));
    FileOutcome { findings, allowed }
}

/// True at index `c` if it is an identifier byte.
fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Finds word-boundary occurrences of `word` in `code`, returning byte
/// offsets.
fn token_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find(word) {
        let at = from + at;
        let left_ok = at == 0 || !is_ident(bytes[at - 1]);
        let right = at + word.len();
        let right_ok = right >= bytes.len() || !is_ident(bytes[right]);
        if left_ok && right_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// Marks every line inside a `#[cfg(test)]` item (module, fn, impl) as a
/// test line. Works on the code view: finds the attribute, skips further
/// attributes, then spans the following `{ ... }` (or to `;` for
/// braceless items).
fn test_region_lines(view: &CodeView) -> Vec<bool> {
    let code = &view.code;
    let bytes = code.as_bytes();
    let mut test = vec![false; view.line_count() + 2];
    for at in token_positions(code, "cfg") {
        // Expect `#[cfg(test)]` — allow whitespace, require the literal
        // `test` argument (not `feature = ...`).
        let before: String = code[..at].chars().rev().take(8).collect();
        if !before.trim_start().starts_with('[') {
            continue;
        }
        let after = &code[at..];
        let Some(close) = after.find(']') else {
            continue;
        };
        let attr = &after[..close];
        let args = attr.trim_start_matches("cfg").trim();
        if args.replace(' ', "") != "(test)" {
            continue;
        }
        // Scan past this and any further attributes to the item body.
        let mut i = at + close + 1;
        loop {
            while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'#' {
                // Another attribute: skip its balanced [...].
                let mut depth = 0i32;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                continue;
            }
            break;
        }
        // The item: ends at the matching `}` of its first brace, or at a
        // top-level `;` for braceless items (`#[cfg(test)] use ...;`).
        let start_line = view.line_of(at);
        let mut depth = 0i32;
        let mut saw_brace = false;
        let mut end = i;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => {
                    depth += 1;
                    saw_brace = true;
                }
                b'}' => {
                    depth -= 1;
                    if saw_brace && depth == 0 {
                        break;
                    }
                }
                b';' if !saw_brace && depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end_line = view.line_of(end.min(bytes.len().saturating_sub(1)));
        for l in start_line..=end_line {
            if l < test.len() {
                test[l] = true;
            }
        }
    }
    test
}

/// Byte spans of `use ...;` statements (imports are not uses of a type).
fn import_spans(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    token_positions(code, "use")
        .into_iter()
        .map(|at| {
            let end = bytes[at..]
                .iter()
                .position(|&b| b == b';')
                .map_or(bytes.len(), |p| at + p);
            (at, end)
        })
        .collect()
}

fn in_spans(spans: &[(usize, usize)], at: usize) -> bool {
    spans.iter().any(|&(s, e)| at >= s && at <= e)
}

/// R1: default-hasher `HashMap`/`HashSet` construction or type use.
fn rule_default_hasher(view: &CodeView, test_lines: &[bool]) -> Vec<Finding> {
    let code = &view.code;
    let bytes = code.as_bytes();
    let imports = import_spans(code);
    let mut out = Vec::new();
    for (word, hasher_param_commas) in [("HashMap", 2usize), ("HashSet", 1usize)] {
        for at in token_positions(code, word) {
            let line = view.line_of(at);
            if test_lines.get(line).copied().unwrap_or(false) || in_spans(&imports, at) {
                continue;
            }
            let mut i = at + word.len();
            while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                i += 1;
            }
            // Turbofish `::<` is generics too; plain `::method` may name
            // an explicit-hasher constructor.
            if bytes.get(i) == Some(&b':') && bytes.get(i + 1) == Some(&b':') {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                    i += 1;
                }
                if bytes.get(i) != Some(&b'<') {
                    let mut j = i;
                    while j < bytes.len() && is_ident(bytes[j]) {
                        j += 1;
                    }
                    let method = &code[i..j];
                    if method == "with_hasher" || method == "with_capacity_and_hasher" {
                        continue;
                    }
                    out.push(finding_r1(line, word));
                    continue;
                }
            }
            if bytes.get(i) == Some(&b'<') {
                // Count top-level commas of the generic argument list: a
                // third `HashMap` parameter (second for `HashSet`) names
                // an explicit hasher.
                let mut depth = 0i32;
                let mut commas = 0usize;
                let mut j = i;
                while j < bytes.len() {
                    match bytes[j] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        b',' if depth == 1 => commas += 1,
                        b'(' | b')' | b'{' | b'}' | b';' if depth <= 1 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if commas >= hasher_param_commas {
                    continue;
                }
            }
            out.push(finding_r1(line, word));
        }
    }
    // A type annotation and its constructor often share a line; one
    // diagnostic per line is enough to drive the fix.
    out.sort_by_key(|f| f.line);
    out.dedup_by_key(|f| f.line);
    out
}

fn finding_r1(line: usize, word: &str) -> Finding {
    Finding {
        line,
        rule: RuleId::DefaultHasher,
        message: format!(
            "default-hasher `{word}` on a sim-path crate: RandomState is seeded per \
             process; use FxHashMap/FxHashSet (ethmeter_types), BTreeMap, or an \
             explicit hasher"
        ),
    }
}

/// Iteration methods R2 watches for on hash-backed receivers.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// Evidence that an iteration's result is ordered or order-free:
/// a sort, or a commutative terminal fold, inside the consuming
/// statement (or the two lines after it, for collect-then-sort).
const ORDER_SANCTIONS: &[&str] = &[
    "sort",
    ".sum()",
    ".count()",
    ".min(",
    ".max(",
    ".min_by",
    ".max_by",
    ".all(",
    ".any(",
    ".product()",
    ".fill(",
];

/// R2: unordered iteration over hash-based containers declared in this
/// file. Heuristic and deliberately narrow: it tracks identifiers
/// declared with a `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet` type (or
/// initialized from one) and flags iterator-producing method calls on
/// them — plus `for _ in &ident` sugar — unless the enclosing statement
/// shows a sort or a commutative fold. Everything subtler takes a
/// pragma with a written reason.
fn rule_unordered_iter(view: &CodeView, test_lines: &[bool]) -> Vec<Finding> {
    let code = &view.code;
    let bytes = code.as_bytes();
    let idents = hash_idents(view, test_lines);
    if idents.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut flag = |at: usize, ident: &str| {
        let line = view.line_of(at);
        if test_lines.get(line).copied().unwrap_or(false) {
            return;
        }
        if statement_is_sanctioned(view, at) {
            return;
        }
        out.push(Finding {
            line,
            rule: RuleId::UnorderedIter,
            message: format!(
                "unordered iteration over hash-based `{ident}`: sort the result, fold \
                 it commutatively, or justify with a pragma"
            ),
        });
    };
    for method in ITER_METHODS {
        let mut from = 0;
        while let Some(found) = code[from..].find(method) {
            let at = from + found;
            from = at + method.len();
            // Receiver: the identifier chain segment before `.`, skipping
            // the whitespace a formatter puts before a wrapped method.
            let mut e = at;
            while e > 0 && (bytes[e - 1] as char).is_whitespace() {
                e -= 1;
            }
            let mut s = e;
            while s > 0 && is_ident(bytes[s - 1]) {
                s -= 1;
            }
            let recv = &code[s..e];
            if idents.iter().any(|i| i == recv) {
                flag(at, recv);
            }
        }
    }
    // `for x in &ident` / `&mut ident` / `&self.ident`: by-reference
    // loops iterate the container directly.
    for at in token_positions(code, "for") {
        let rest = &code[at..];
        let Some(in_rel) = rest.find(" in ") else {
            continue;
        };
        if in_rel > 120 {
            continue;
        }
        let expr = rest[in_rel + 4..].trim_start();
        let Some(expr) = expr.strip_prefix('&') else {
            continue;
        };
        let expr = expr
            .trim_start_matches("mut ")
            .trim_start()
            .trim_start_matches("self.");
        let end = expr
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(expr.len());
        let ident = &expr[..end];
        if !ident.is_empty() && idents.iter().any(|i| i == ident) {
            flag(at, ident);
        }
    }
    out.sort_by_key(|f| f.line);
    out.dedup_by_key(|f| f.line);
    out
}

/// Identifiers declared in this file with a hash-based container type:
/// `name: [Fx]Hash{Map,Set}<...>` (fields, params, lets with annotation)
/// or `let [mut] name = [Fx]Hash{Map,Set}::...` initializers.
/// Declarations inside `#[cfg(test)]` regions are skipped so a test-only
/// binding cannot shadow-flag an unrelated non-test identifier.
fn hash_idents(view: &CodeView, test_lines: &[bool]) -> Vec<String> {
    let code = &view.code;
    let bytes = code.as_bytes();
    let mut out: Vec<String> = Vec::new();
    for word in ["HashMap", "HashSet", "FxHashMap", "FxHashSet"] {
        for at in token_positions(code, word) {
            if test_lines.get(view.line_of(at)).copied().unwrap_or(false) {
                continue;
            }
            // Case 1: `name :" Type` — scan back over whitespace, an
            // optional path prefix (`std::collections::`), to a `:`.
            let mut i = at;
            while i > 0 && (is_ident(bytes[i - 1]) || bytes[i - 1] == b':' || bytes[i - 1] == b' ')
            {
                i -= 1;
                if bytes[i] == b':' && i > 0 && bytes[i - 1] != b':' {
                    // Lone colon: the declaration's type annotation.
                    let mut e = i;
                    while e > 0 && bytes[e - 1] == b' ' {
                        e -= 1;
                    }
                    let mut s = e;
                    while s > 0 && is_ident(bytes[s - 1]) {
                        s -= 1;
                    }
                    if s < e {
                        let name = code[s..e].to_string();
                        if name != "mut" && !out.contains(&name) {
                            out.push(name);
                        }
                    }
                    break;
                }
                if bytes[i] == b':' {
                    // `::` path segment; skip both colons and continue.
                    if i == 0 || bytes[i - 1] != b':' {
                        break;
                    }
                    i -= 1;
                }
            }
            // Case 2: `let [mut] name = Word::...` on the same line.
            let line_start = code[..at].rfind('\n').map_or(0, |p| p + 1);
            let prefix = &code[line_start..at];
            if let Some(let_at) = prefix.find("let ") {
                let decl = prefix[let_at + 4..].trim_start();
                let decl = decl.strip_prefix("mut ").unwrap_or(decl).trim_start();
                let end = decl
                    .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                    .unwrap_or(decl.len());
                let name = &decl[..end];
                if !name.is_empty() && prefix.contains('=') && !out.contains(&name.to_string()) {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// True if the statement enclosing `at` (or the two source lines after
/// it) contains ordering/commutativity evidence.
fn statement_is_sanctioned(view: &CodeView, at: usize) -> bool {
    let code = &view.code;
    let bytes = code.as_bytes();
    // Statement start: after the previous `;`, `{` or `}`.
    let start = code[..at].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    // Statement end: a `;` at depth 0, or the `}` closing a block opened
    // within the statement (for-loop bodies), or the enclosing block end.
    let mut depth = 0i32;
    let mut saw_brace = false;
    let mut end = at;
    while end < bytes.len() {
        match bytes[end] {
            b'(' | b'[' | b'{' => {
                saw_brace |= bytes[end] == b'{';
                depth += 1;
            }
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth < 0 || (saw_brace && depth == 0 && bytes[end] == b'}') {
                    break;
                }
            }
            b';' if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    // Collect-then-sort idiom: also scan the two lines after the
    // statement for a sort of the just-built binding.
    let mut window_end = end;
    let mut newlines = 0;
    while window_end < bytes.len() && newlines < 3 {
        if bytes[window_end] == b'\n' {
            newlines += 1;
        }
        window_end += 1;
    }
    let span = &code[start..window_end.min(code.len())];
    ORDER_SANCTIONS.iter().any(|s| span.contains(s))
}

/// Entropy/wall-clock tokens R3 forbids, with the reported offender.
const ENTROPY_PATTERNS: &[(&str, &str)] = &[
    ("Instant::now", "std::time::Instant::now"),
    ("SystemTime", "std::time::SystemTime"),
    ("thread_rng", "rand::thread_rng"),
    ("rand::random", "rand::random"),
    ("from_entropy", "SeedableRng::from_entropy"),
    ("getrandom", "getrandom"),
    ("RandomState", "std::collections::hash_map::RandomState"),
    ("env::var", "std::env::var"),
    ("env::args", "std::env::args"),
    ("env::vars", "std::env::vars"),
];

/// R3: wall-clock and OS entropy.
fn rule_entropy(view: &CodeView, test_lines: &[bool]) -> Vec<Finding> {
    let code = &view.code;
    let mut out: Vec<Finding> = Vec::new();
    for (pat, offender) in ENTROPY_PATTERNS {
        // Token-boundary on the leading identifier of the pattern.
        let lead = pat.split(':').next().unwrap_or(pat);
        for at in token_positions(code, lead) {
            if !code[at..].starts_with(pat) {
                continue;
            }
            let line = view.line_of(at);
            if test_lines.get(line).copied().unwrap_or(false) {
                continue;
            }
            if out.iter().any(|f: &Finding| f.line == line) {
                continue;
            }
            out.push(Finding {
                line,
                rule: RuleId::Entropy,
                message: format!(
                    "`{offender}` on the simulation path: results must be a pure \
                     function of (scenario, seed); route randomness through the \
                     seeded Xoshiro256 and time through SimTime"
                ),
            });
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

/// Attributes every crate root must carry.
const HYGIENE_ATTRS: &[&str] = &["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

/// R4: workspace lint header on crate roots.
fn rule_crate_hygiene(view: &CodeView) -> Vec<Finding> {
    let squashed: String = view.code.replace([' ', '\t'], "");
    let mut out = Vec::new();
    for attr in HYGIENE_ATTRS {
        let want: String = attr.replace(' ', "");
        if !squashed.contains(&want) {
            out.push(Finding {
                line: 1,
                rule: RuleId::CrateHygiene,
                message: format!("crate root is missing the workspace lint header `{attr}`"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_ctx() -> FileCtx {
        FileCtx {
            crate_name: "net".into(),
            kind: FileKind::Source,
            is_crate_root: false,
        }
    }

    #[test]
    fn default_hasher_construction_is_flagged() {
        let src = "fn f() { let m = std::collections::HashMap::new(); m.insert(1, 2); }\n";
        let out = check_file(&sim_ctx(), src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, RuleId::DefaultHasher);
    }

    #[test]
    fn explicit_hasher_generics_pass() {
        let src = "struct S { m: HashMap<u32, u32, BuildFxHasher>, s: HashSet<u32, B> }\n";
        let out = check_file(&sim_ctx(), src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn fx_aliases_pass_and_imports_are_ignored() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   struct S { m: FxHashMap<u32, u32> }\n";
        let out = check_file(&sim_ctx(), src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "struct S;\n#[cfg(test)]\nmod tests {\n    fn f() { let m = HashMap::new(); let _ = m; }\n}\n";
        let out = check_file(&sim_ctx(), src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unordered_iteration_is_flagged_and_sort_sanctions() {
        let bad = "struct S { m: FxHashMap<u32, u32> }\n\
                   impl S { fn f(&self) -> Vec<u32> { self.m.values().copied().collect() } }\n";
        let out = check_file(&sim_ctx(), bad);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, RuleId::UnorderedIter);

        let good = "struct S { m: FxHashMap<u32, u32> }\n\
                    impl S { fn f(&self) -> Vec<u32> {\n\
                        let mut v: Vec<u32> = self.m.values().copied().collect();\n\
                        v.sort_unstable();\n\
                        v\n\
                    } }\n";
        let out = check_file(&sim_ctx(), good);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn commutative_folds_pass() {
        let src = "struct S { m: FxHashMap<u32, u64> }\n\
                   impl S { fn f(&self) -> u64 { self.m.values().sum() } }\n";
        // `.sum()` needs the call parens to match the sanction list.
        let src2 = src.replace(".sum()", ".copied().sum()");
        for s in [src.to_string(), src2] {
            let out = check_file(&sim_ctx(), &s);
            assert!(out.findings.is_empty(), "{s} -> {:?}", out.findings);
        }
    }

    #[test]
    fn entropy_is_flagged_outside_exempt_crates() {
        let src = "fn f() { let t = Instant::now(); let v = std::env::var(\"X\"); }\n";
        let out = check_file(&sim_ctx(), src);
        assert_eq!(out.findings.len(), 1, "one per line: {:?}", out.findings);
        assert_eq!(out.findings[0].rule, RuleId::Entropy);

        let bench = FileCtx {
            crate_name: "bench".into(),
            kind: FileKind::Source,
            is_crate_root: false,
        };
        assert!(check_file(&bench, src).findings.is_empty());
    }

    #[test]
    fn crate_hygiene_requires_both_attrs() {
        let root = FileCtx {
            crate_name: "net".into(),
            kind: FileKind::Source,
            is_crate_root: true,
        };
        let out = check_file(&root, "#![forbid(unsafe_code)]\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, RuleId::CrateHygiene);
        let out = check_file(&root, "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n");
        assert!(out.findings.is_empty());
    }

    #[test]
    fn tests_benches_examples_skip_policy_rules() {
        let src = "fn f() { let m = HashMap::new(); let _ = (m, Instant::now()); }\n";
        for kind in [FileKind::Test, FileKind::Bench, FileKind::Example] {
            let ctx = FileCtx {
                crate_name: "net".into(),
                kind,
                is_crate_root: false,
            };
            assert!(check_file(&ctx, src).findings.is_empty(), "{kind:?}");
        }
    }
}
