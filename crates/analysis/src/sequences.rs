//! Figure 7 and §III-D: consecutive main-chain blocks per pool, and what
//! they imply for the 12-block finality rule.
//!
//! "If a mining pool is able to produce more than 12 blocks in a row ...
//! it can effectively censor the blockchain and perform attacks such as
//! double-spends." The analysis extracts per-pool run lengths from the
//! canonical miner sequence, compares observed counts against the
//! theoretical expectation at each pool's hash share, and converts the
//! longest observed runs into censorship windows.

use std::fmt;

use ethmeter_measure::CampaignData;
use ethmeter_stats::runs::{naive_expected_runs, prob_run_at_least, run_lengths};
use ethmeter_stats::table::{f3, grouped, pct, Table};
use ethmeter_types::{PoolId, SimDuration};

/// One pool's sequence statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSequenceRow {
    /// The pool.
    pub pool: PoolId,
    /// Display name.
    pub name: String,
    /// Hash-power share.
    pub share: f64,
    /// Canonical blocks mined.
    pub blocks: u64,
    /// `runs[len]` = number of maximal runs of exactly `len` blocks
    /// (index 0 unused).
    pub runs: Vec<u64>,
    /// Longest observed run.
    pub longest: usize,
}

impl PoolSequenceRow {
    /// Count of maximal runs with length ≥ `k`.
    pub fn runs_at_least(&self, k: usize) -> u64 {
        self.runs.iter().skip(k).sum()
    }

    /// Figure 7's y-value: fraction of this pool's runs with length ≤ `k`
    /// (a CDF over run lengths).
    pub fn cdf_at(&self, k: usize) -> f64 {
        let total: u64 = self.runs.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let le: u64 = self.runs.iter().take(k + 1).sum();
        le as f64 / total as f64
    }
}

/// Figure 7 plus the §III-D security table.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceReport {
    /// Rows ordered by descending share.
    pub pools: Vec<PoolSequenceRow>,
    /// Length of the analyzed canonical chain.
    pub total_blocks: u64,
    /// Mean inter-block time (for censorship-window conversion).
    pub interblock: SimDuration,
}

impl SequenceReport {
    /// The longest run across all pools.
    pub fn longest_overall(&self) -> usize {
        self.pools.iter().map(|p| p.longest).max().unwrap_or(0)
    }

    /// The censorship window a run of `len` blocks represents.
    pub fn censorship_window(&self, len: usize) -> SimDuration {
        self.interblock * len as u64
    }

    /// §III-D's comparison for one pool and run length: `(observed count,
    /// naive expected count, exact probability of at least one)`.
    pub fn theory_for(&self, row: &PoolSequenceRow, k: usize) -> (u64, f64, f64) {
        let observed = row.runs_at_least(k);
        let expected = naive_expected_runs(self.total_blocks, row.share, k as u32);
        let prob = prob_run_at_least(self.total_blocks, row.share, k as u32);
        (observed, expected, prob)
    }
}

/// Analyzes a bare miner sequence (used directly by the chain-only
/// simulator). `names`/`shares` are indexed by pool id; unknown pools get
/// a generated label and zero share.
pub fn analyze_sequence(
    seq: &[PoolId],
    names: &[String],
    shares: &[f64],
    interblock: SimDuration,
) -> SequenceReport {
    let max_pool = seq
        .iter()
        .map(|p| p.index() + 1)
        .max()
        .unwrap_or(0)
        .max(names.len());
    let mut blocks = vec![0u64; max_pool];
    for p in seq {
        blocks[p.index()] += 1;
    }
    let mut runs: Vec<Vec<u64>> = vec![Vec::new(); max_pool];
    for (pool, len) in run_lengths(seq) {
        let r = &mut runs[pool.index()];
        if r.len() <= len {
            r.resize(len + 1, 0);
        }
        r[len] += 1;
    }
    let mut pools: Vec<PoolSequenceRow> = (0..max_pool)
        .filter(|&i| blocks[i] > 0)
        .map(|i| {
            let longest = runs[i]
                .iter()
                .enumerate()
                .rev()
                .find(|&(_, &c)| c > 0)
                .map_or(0, |(l, _)| l);
            PoolSequenceRow {
                pool: PoolId(i as u16),
                name: names.get(i).cloned().unwrap_or_else(|| format!("pool-{i}")),
                share: shares.get(i).copied().unwrap_or(0.0),
                blocks: blocks[i],
                runs: std::mem::take(&mut runs[i]),
                longest,
            }
        })
        .collect();
    pools.sort_by(|a, b| {
        b.share
            .partial_cmp(&a.share)
            .expect("finite shares")
            .then(b.blocks.cmp(&a.blocks))
            .then(a.pool.cmp(&b.pool))
    });
    SequenceReport {
        pools,
        total_blocks: seq.len() as u64,
        interblock,
    }
}

/// Analyzes a campaign's canonical chain.
pub fn analyze(data: &CampaignData) -> SequenceReport {
    let seq = ethmeter_chain::forks::miner_sequence(&data.truth.tree);
    analyze_sequence(
        &seq,
        &data.truth.pool_names,
        &data.truth.pool_shares,
        data.truth.interblock,
    )
}

impl fmt::Display for SequenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7 / §III-D — consecutive main-chain blocks per pool ({} blocks)",
            grouped(self.total_blocks)
        )?;
        let mut t = Table::new(vec![
            "Pool",
            "Share",
            "Blocks",
            "Longest run",
            "Censor window",
            "Obs >= longest",
            "E[naive]",
            "P(exact)",
        ]);
        for row in self.pools.iter().take(8) {
            let k = row.longest.max(1);
            let (obs, expected, prob) = self.theory_for(row, k);
            t.row(vec![
                row.name.clone(),
                pct(row.share),
                grouped(row.blocks),
                row.longest.to_string(),
                format!("{:.0}s", self.censorship_window(row.longest).as_secs_f64()),
                obs.to_string(),
                f3(expected),
                f3(prob),
            ]);
        }
        write!(f, "{t}")?;
        write!(
            f,
            "(paper: Ethermine 4 runs of 8; Sparkpool 2 runs of 9; 12-conf window ~3 min)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    fn names() -> Vec<String> {
        vec!["Ethermine".into(), "Sparkpool".into()]
    }

    #[test]
    fn runs_extracted_per_pool() {
        // Sequence: A A A B A B B -> A runs: 3,1 ; B runs: 1,2.
        let seq: Vec<PoolId> = [0, 0, 0, 1, 0, 1, 1].iter().map(|&i| PoolId(i)).collect();
        let r = analyze_sequence(
            &seq,
            &names(),
            &[0.55, 0.45],
            SimDuration::from_secs_f64(13.3),
        );
        assert_eq!(r.total_blocks, 7);
        let a = &r.pools[0];
        assert_eq!(a.name, "Ethermine");
        assert_eq!(a.blocks, 4);
        assert_eq!(a.longest, 3);
        assert_eq!(a.runs_at_least(1), 2);
        assert_eq!(a.runs_at_least(2), 1);
        assert_eq!(a.runs_at_least(4), 0);
        let b = &r.pools[1];
        assert_eq!(b.longest, 2);
        assert_eq!(b.runs_at_least(1), 2);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let seq: Vec<PoolId> = [0, 0, 1, 0, 1, 1, 1].iter().map(|&i| PoolId(i)).collect();
        let r = analyze_sequence(
            &seq,
            &names(),
            &[0.5, 0.5],
            SimDuration::from_secs_f64(13.3),
        );
        for row in &r.pools {
            let mut prev = 0.0;
            for k in 0..=row.longest {
                let c = row.cdf_at(k);
                assert!(c >= prev);
                prev = c;
            }
            assert!((row.cdf_at(row.longest) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn censorship_window_scales_with_interblock() {
        let seq: Vec<PoolId> = vec![PoolId(0); 9];
        let r = analyze_sequence(
            &seq,
            &names(),
            &[1.0, 0.0],
            SimDuration::from_secs_f64(13.3),
        );
        assert_eq!(r.longest_overall(), 9);
        // 9 blocks * 13.3 s ~ 120 s — the paper's "two minutes" regime.
        let w = r.censorship_window(9).as_secs_f64();
        assert!((w - 119.7).abs() < 0.2, "window {w}");
    }

    #[test]
    fn theory_matches_paper_arithmetic() {
        // 201,086 blocks, Ethermine share 0.259, runs of 8: ~4 expected.
        let seq: Vec<PoolId> = vec![PoolId(0); 10];
        let mut r = analyze_sequence(
            &seq,
            &names(),
            &[0.259, 0.0],
            SimDuration::from_secs_f64(13.3),
        );
        r.total_blocks = 201_086;
        let row = r.pools[0].clone();
        let (_, expected, prob) = r.theory_for(&row, 8);
        assert!((3.0..5.5).contains(&expected), "expected {expected}");
        assert!(prob > 0.9, "with E~4, at least one is near-certain: {prob}");
    }

    #[test]
    fn campaign_wrapper_uses_ground_truth() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let r = analyze(&data);
        // Alternating miners: every run has length 1.
        assert_eq!(r.total_blocks, testutil::BLOCKS as u64);
        assert_eq!(r.longest_overall(), 1);
        assert!(r.to_string().contains("Figure 7"));
    }

    #[test]
    fn empty_sequence() {
        let r = analyze_sequence(&[], &[], &[], SimDuration::from_secs_f64(13.3));
        assert_eq!(r.total_blocks, 0);
        assert!(r.pools.is_empty());
        assert_eq!(r.longest_overall(), 0);
    }
}
