//! Finality security (paper §III-D): consecutive same-pool block
//! sequences, censorship windows, and theory vs observation.
//!
//! Runs the chain-only simulator at the paper's exact scales: the
//! one-month window (201,086 blocks) and the whole-chain scan (7.7M
//! blocks), then prints the analytic probabilities the paper derives.
//!
//! ```sh
//! cargo run --release --example security_censorship
//! ```

use ethmeter::prelude::*;
use ethmeter::stats::runs::{expected_trials_until_run, naive_expected_runs, prob_run_at_least};

fn main() {
    // One month at April-2019 shares.
    let month = run_chain_only(&ChainOnlyConfig::paper_month(2019));
    let report = month.report();
    println!("{report}\n");

    // The paper's arithmetic, recomputed exactly.
    println!("theory at the paper's shares (201,086 blocks):");
    for (name, share, k) in [("Ethermine", 0.259, 8u32), ("Sparkpool", 0.2269, 9)] {
        println!(
            "  {name}: share {share}, runs of {k}: naive E = {:.2}, exact P(>=1) = {:.3}",
            naive_expected_runs(201_086, share, k),
            prob_run_at_least(201_086, share, k),
        );
    }

    // The 14-block run ever observed: how long would one wait?
    let wait_blocks = expected_trials_until_run(0.259, 14);
    let years = wait_blocks * 13.3 / 3.15e7;
    println!(
        "  a 14-run at share 0.259: expected wait {wait_blocks:.2e} blocks (~{years:.0} years)\n"
    );

    // Whole-chain scan: the 10/11/12/14-run regime of §III-D.
    println!("whole-chain scan (7.7M simulated blocks):");
    let chain = run_chain_only(&ChainOnlyConfig::paper_whole_chain(2019));
    let report = chain.report();
    for row in report.pools.iter().take(4) {
        println!(
            "  {:<16} share {:>6.2}%  longest run {:>2}  censor window {:>4.0}s  runs>=10: {}",
            row.name,
            row.share * 100.0,
            row.longest,
            report.censorship_window(row.longest).as_secs_f64(),
            row.runs_at_least(10),
        );
    }
    println!(
        "\nA pool that can mine 12+ consecutive blocks can revert anything the\n\
         12-confirmation rule calls final — the paper's core security warning."
    );
}
