//! One benchmark per paper table/figure: each measures the analyzer that
//! regenerates the artifact, over a shared seeded campaign (the campaign
//! itself is benchmarked separately in `engine.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use ethmeter_analysis::{
    commit, empty_blocks, first_observation, forks, propagation, redundancy, sequences,
};
use ethmeter_bench::bench_scenario;
use ethmeter_core::experiments;
use ethmeter_core::run_campaign;
use ethmeter_measure::CampaignData;
use std::hint::black_box;

fn campaign() -> CampaignData {
    run_campaign(&bench_scenario(42)).campaign
}

fn bench_figures(c: &mut Criterion) {
    let data = campaign();
    let mut g = c.benchmark_group("figures");

    g.bench_function("table1_infrastructure", |b| {
        b.iter(|| black_box(experiments::table1(&data)))
    });
    g.bench_function("fig1_propagation", |b| {
        b.iter(|| black_box(propagation::analyze(&data)))
    });
    g.bench_function("table2_redundancy", |b| {
        b.iter(|| black_box(redundancy::analyze(&data)))
    });
    g.bench_function("fig2_geo_first_observation", |b| {
        b.iter(|| black_box(first_observation::geo(&data)))
    });
    g.bench_function("fig3_pool_first_observation", |b| {
        b.iter(|| black_box(first_observation::by_pool(&data, 15)))
    });
    g.bench_function("fig4_commit_times", |b| {
        b.iter(|| black_box(commit::analyze(&data)))
    });
    g.bench_function("fig5_ordering", |b| {
        b.iter(|| black_box(commit::ordering(&data)))
    });
    g.bench_function("fig6_empty_blocks", |b| {
        b.iter(|| black_box(empty_blocks::analyze(&data, 15)))
    });
    g.bench_function("table3_forks", |b| {
        b.iter(|| black_box(forks::analyze(&data)))
    });
    g.bench_function("fig7_sequences_campaign", |b| {
        b.iter(|| black_box(sequences::analyze(&data)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
