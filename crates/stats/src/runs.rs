//! Run-length statistics for miner sequences.
//!
//! §III-D of the paper measures how many *consecutive* main-chain blocks a
//! single pool mined (Figure 7) and compares against the theoretical
//! chance: "the theoretical chance of mining a sequence of 8 consecutive
//! blocks would be 0.259^8 = 2 × 10^-5 ... Ethermine should be able to mine
//! 8 consecutive blocks 4 times per month". This module provides both the
//! empirical extraction and the exact theory the paper approximates.

/// Extracts maximal runs from a sequence: `[(value, run_length)]`.
///
/// ```
/// use ethmeter_stats::runs::run_lengths;
/// assert_eq!(run_lengths(&[1, 1, 2, 2, 2, 1]), vec![(1, 2), (2, 3), (1, 1)]);
/// ```
pub fn run_lengths<T: Copy + PartialEq>(seq: &[T]) -> Vec<(T, usize)> {
    let mut out = Vec::new();
    let mut iter = seq.iter();
    let Some(&first) = iter.next() else {
        return out;
    };
    let mut current = first;
    let mut len = 1usize;
    for &v in iter {
        if v == current {
            len += 1;
        } else {
            out.push((current, len));
            current = v;
            len = 1;
        }
    }
    out.push((current, len));
    out
}

/// The longest run of `value` in `seq` (0 if absent).
pub fn longest_run<T: Copy + PartialEq>(seq: &[T], value: T) -> usize {
    run_lengths(seq)
        .into_iter()
        .filter(|&(v, _)| v == value)
        .map(|(_, l)| l)
        .max()
        .unwrap_or(0)
}

/// Counts maximal runs of `value` with length at least `k`.
pub fn count_runs_at_least<T: Copy + PartialEq>(seq: &[T], value: T, k: usize) -> usize {
    run_lengths(seq)
        .into_iter()
        .filter(|&(v, l)| v == value && l >= k)
        .count()
}

/// The paper's naive estimate of how many `k`-runs a miner with block-win
/// probability `p` produces among `n` blocks: `n * p^k`.
///
/// (This is the §III-D back-of-envelope: `2e-5 × 201,086 ≈ 4`.)
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn naive_expected_runs(n: u64, p: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    n as f64 * p.powi(k as i32)
}

/// Exact expected number of *maximal* runs of length ≥ `k` in `n` Bernoulli
/// trials with success probability `p`.
///
/// By linearity: a maximal ≥k-run starts at trial 1 with probability `p^k`,
/// and at trial `i > 1` with probability `(1-p)·p^k`, so
/// `E = p^k · (1 + (n-k)·(1-p))` for `n ≥ k`, else 0.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `k == 0`.
pub fn expected_maximal_runs(n: u64, p: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    assert!(k > 0, "run length must be positive");
    if n < u64::from(k) {
        return 0.0;
    }
    let pk = p.powi(k as i32);
    pk * (1.0 + (n - u64::from(k)) as f64 * (1.0 - p))
}

/// Exact probability that `n` Bernoulli(`p`) trials contain at least one
/// run of ≥ `k` successes.
///
/// Computed by dynamic programming over the current-run-length state
/// (O(n·k) time, O(k) space), so it is exact rather than the Poisson
/// approximation implicit in the paper's estimate.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `k == 0`.
pub fn prob_run_at_least(n: u64, p: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    assert!(k > 0, "run length must be positive");
    if n < u64::from(k) {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let k = k as usize;
    // state[j] = P(alive, current trailing run == j), j in 0..k
    let mut state = vec![0.0f64; k];
    state[0] = 1.0;
    let mut dead = 0.0f64; // absorbed: a >=k run has occurred
    for _ in 0..n {
        let mut next = vec![0.0f64; k];
        let mut fail_mass = 0.0;
        for (j, &m) in state.iter().enumerate() {
            if m == 0.0 {
                continue;
            }
            fail_mass += m * (1.0 - p);
            let extended = m * p;
            if j + 1 == k {
                dead += extended;
            } else {
                next[j + 1] += extended;
            }
        }
        next[0] += fail_mass;
        state = next;
    }
    dead
}

/// Expected number of trials until the first run of `k` successes completes
/// (inclusive of the run itself): `(1 - p^k) / ((1 - p) · p^k)` + `k`-free
/// standard form; equivalently `(p^-k - 1)/(1 - p)`.
///
/// §III-D: with `p = 0.259` and `k = 14`, this is on the order of 10^7
/// blocks — "once in 1,000 years" at 13.3 s/block.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)` or `k == 0`.
pub fn expected_trials_until_run(p: f64, k: u32) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1)");
    assert!(k > 0, "run length must be positive");
    (p.powi(-(k as i32)) - 1.0) / (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn run_extraction_basics() {
        assert_eq!(run_lengths::<u8>(&[]), vec![]);
        assert_eq!(run_lengths(&[5]), vec![(5, 1)]);
        assert_eq!(
            run_lengths(&[1, 1, 1, 2, 1, 1]),
            vec![(1, 3), (2, 1), (1, 2)]
        );
    }

    #[test]
    fn longest_and_count() {
        let seq = [1, 1, 2, 1, 1, 1, 2, 2, 1];
        assert_eq!(longest_run(&seq, 1), 3);
        assert_eq!(longest_run(&seq, 2), 2);
        assert_eq!(longest_run(&seq, 9), 0);
        assert_eq!(count_runs_at_least(&seq, 1, 2), 2);
        assert_eq!(count_runs_at_least(&seq, 1, 3), 1);
        assert_eq!(count_runs_at_least(&seq, 2, 1), 2);
    }

    #[test]
    fn paper_headline_numbers() {
        // Ethermine: p = 0.259, k = 8 => p^8 ~ 2e-5; over 201,086 blocks ~ 4
        // occurrences (paper's §III-D arithmetic).
        let p = 0.259f64;
        let naive = naive_expected_runs(201_086, p, 8);
        assert!((3.0..5.5).contains(&naive), "naive {naive}");
        // Exact maximal-run expectation is close to (1-p) * naive here.
        let exact = expected_maximal_runs(201_086, p, 8);
        assert!((exact - naive * (1.0 - p)).abs() / exact < 0.01);

        // Sparkpool: p = 0.2269, k = 9 => about 0.3/month naive.
        let spark = naive_expected_runs(201_086, 0.2269, 9);
        assert!((0.2..0.5).contains(&spark), "spark {spark}");

        // 14-run at p = 0.259: mean waiting ~ 2.2e8 blocks ~ 90 years of
        // 13.3s blocks. The paper rounds this to "once in 1,000 years";
        // the exact arithmetic gives decades-to-centuries -- either way,
        // vastly beyond the one 14-run actually observed on chain, which is
        // the paper's point. We assert the order of magnitude.
        let per_month = naive_expected_runs(201_086, 0.259, 14);
        let years = 1.0 / per_month / 12.0;
        assert!((30.0..2_000.0).contains(&years), "years {years}");
        let wait_blocks = expected_trials_until_run(0.259, 14);
        assert!(wait_blocks > 1e8, "wait {wait_blocks}");
    }

    #[test]
    fn dp_matches_closed_forms_small() {
        // k=1: P(any success in n trials) = 1 - (1-p)^n.
        for &(n, p) in &[(1u64, 0.3f64), (5, 0.3), (10, 0.7)] {
            let dp = prob_run_at_least(n, p, 1);
            let closed = 1.0 - (1.0 - p).powi(n as i32);
            assert!((dp - closed).abs() < 1e-12, "n={n} p={p}");
        }
        // n = k: must be exactly p^k.
        let dp = prob_run_at_least(4, 0.5, 4);
        assert!((dp - 0.0625).abs() < 1e-12);
        // Degenerate edges.
        assert_eq!(prob_run_at_least(3, 0.5, 4), 0.0);
        assert_eq!(prob_run_at_least(10, 1.0, 4), 1.0);
        assert_eq!(prob_run_at_least(10, 0.0, 1), 0.0);
    }

    #[test]
    fn dp_matches_monte_carlo() {
        use ethmeter_sim::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(31);
        let (n, p, k) = (60u64, 0.4f64, 3u32);
        let trials = 200_000;
        let mut hits = 0u64;
        for _ in 0..trials {
            let mut run = 0u32;
            let mut found = false;
            for _ in 0..n {
                if rng.chance(p) {
                    run += 1;
                    if run >= k {
                        found = true;
                        break;
                    }
                } else {
                    run = 0;
                }
            }
            if found {
                hits += 1;
            }
        }
        let mc = hits as f64 / trials as f64;
        let dp = prob_run_at_least(n, p, k);
        assert!((mc - dp).abs() < 0.005, "mc {mc} vs dp {dp}");
    }

    proptest! {
        #[test]
        fn run_lengths_reconstruct_sequence(seq in proptest::collection::vec(0u8..4, 0..200)) {
            let runs = run_lengths(&seq);
            // Total length preserved.
            let total: usize = runs.iter().map(|&(_, l)| l).sum();
            prop_assert_eq!(total, seq.len());
            // Adjacent runs differ in value.
            for w in runs.windows(2) {
                prop_assert_ne!(w[0].0, w[1].0);
            }
            // Reconstruction is identity.
            let rebuilt: Vec<u8> = runs
                .iter()
                .flat_map(|&(v, l)| std::iter::repeat_n(v, l))
                .collect();
            prop_assert_eq!(rebuilt, seq);
        }

        #[test]
        fn prob_is_monotone_in_n_and_antimonotone_in_k(
            p in 0.05f64..0.95,
            k in 1u32..6,
            n in 1u64..60,
        ) {
            let base = prob_run_at_least(n, p, k);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&base));
            // Tolerances absorb the additive FP error of the O(n*k) DP.
            prop_assert!(prob_run_at_least(n + 10, p, k) >= base - 1e-9);
            prop_assert!(prob_run_at_least(n, p, k + 1) <= base + 1e-9);
        }

        #[test]
        fn expected_runs_bounds(p in 0.05f64..0.95, k in 1u32..6, n in 1u64..500) {
            let e = expected_maximal_runs(n, p, k);
            prop_assert!(e >= 0.0);
            // Cannot exceed the count of available starting positions / k.
            prop_assert!(e <= n as f64);
            // Naive estimate upper-bounds the exact maximal-run expectation
            // for n >= k (each maximal run is counted once, naive counts
            // every position).
            if n >= u64::from(k) {
                prop_assert!(e <= naive_expected_runs(n, p, k) + 1e-9);
            }
        }
    }
}
