//! Runtime-dynamics integration suite: scripted churn, partitions, and
//! eclipse attacks must leave static campaigns byte-identical, stay
//! fingerprint-invariant across shard counts, and drive the reorg-depth
//! tail the way the double-spend model predicts.

use ethmeter::experiments;
use ethmeter::prelude::*;
use ethmeter::run_campaign_sharded;
use ethmeter::sim::Engine;
use ethmeter::types::{NodeId, PoolId};
use ethmeter::SimWorld;

mod common;
use common::GOLDENS;

/// An explicitly attached *empty* script must leave the pinned goldens
/// byte-identical: the dynamics machinery may not perturb a static
/// world's RNG streams, event order, or timing by a single bit.
#[test]
fn empty_dynamics_script_leaves_goldens_byte_identical() {
    for &(label, preset, seed, mins, expected) in GOLDENS
        .iter()
        .filter(|(l, ..)| *l == "tiny-101" || *l == "small-707")
    {
        let scenario = Scenario::builder()
            .preset(preset)
            .seed(seed)
            .duration(SimDuration::from_mins(mins))
            .dynamics(DynamicsScript::new())
            .build();
        assert_eq!(
            run_campaign(&scenario).campaign.fingerprint(),
            expected,
            "{label}: empty script must be a no-op"
        );
    }
}

fn partition_scenario(seed: u64, shards: usize) -> Scenario {
    let (east, west) = experiments::east_west_masks();
    let script = DynamicsScript::new().partition_window(
        SimTime::ZERO + SimDuration::from_secs(30),
        SimDuration::from_secs(60),
        east,
        west,
    );
    Scenario::builder()
        .preset(Preset::Tiny)
        .seed(seed)
        .duration(SimDuration::from_mins(3))
        .shards(shards)
        .dynamics(script)
        .build()
}

#[test]
fn partition_script_fingerprint_is_shard_invariant() {
    let sequential = run_campaign(&partition_scenario(11, 1));
    for shards in [2, 4, 8] {
        let sharded = run_campaign_sharded(&partition_scenario(11, shards));
        assert_eq!(sharded.stats, sequential.stats, "{shards} shards");
        assert_eq!(sharded.events, sequential.events, "{shards} shards");
        assert_eq!(
            sharded.campaign.fingerprint(),
            sequential.campaign.fingerprint(),
            "{shards} shards"
        );
    }
}

fn eclipse_scenario(seed: u64, shards: usize) -> Scenario {
    let script = DynamicsScript::new().eclipse_window(
        SimTime::ZERO + SimDuration::from_secs(45),
        SimDuration::from_secs(90),
        PoolId(0),
    );
    Scenario::builder()
        .preset(Preset::Tiny)
        .seed(seed)
        .duration(SimDuration::from_mins(4))
        .pools(experiments::victim_vs_rest_pools(0.3, 2))
        .shards(shards)
        .dynamics(script)
        .build()
}

#[test]
fn eclipse_script_fingerprint_is_shard_invariant() {
    let sequential = run_campaign(&eclipse_scenario(13, 1));
    for shards in [2, 4, 8] {
        let sharded = run_campaign_sharded(&eclipse_scenario(13, shards));
        assert_eq!(sharded.stats, sequential.stats, "{shards} shards");
        assert_eq!(sharded.events, sequential.events, "{shards} shards");
        assert_eq!(
            sharded.campaign.fingerprint(),
            sequential.campaign.fingerprint(),
            "{shards} shards"
        );
    }
}

/// A longer eclipse gives the victim more wall time to mine its island
/// chain, so every level of the `P(revert ≥ k)` tail must grow (weakly,
/// and strictly somewhere) with the eclipse duration.
#[test]
fn eclipse_duration_thickens_the_reorg_tail() {
    let base = Scenario::builder()
        .preset(Preset::Tiny)
        .seed(7)
        .duration(SimDuration::from_mins(8))
        .pools(experiments::victim_vs_rest_pools(0.3, 2))
        .build();
    let start = SimDuration::from_secs(60);
    let reports: Vec<_> = [0u64, 120, 300]
        .iter()
        .map(|&secs| {
            experiments::eclipse_reorg_report(&base, PoolId(0), start, SimDuration::from_secs(secs))
        })
        .collect();
    for k in 1..=12u32 {
        for (shorter, longer) in reports.iter().zip(reports.iter().skip(1)) {
            assert!(
                longer.p_revert(k) >= shorter.p_revert(k) - 1e-12,
                "P(revert >= {k}) shrank with a longer eclipse: {} -> {}",
                shorter.p_revert(k),
                longer.p_revert(k)
            );
        }
    }
    assert!(
        reports[2].abandoned_blocks > reports[0].abandoned_blocks,
        "a 5-minute eclipse must revert more blocks than no eclipse \
         ({} vs {})",
        reports[2].abandoned_blocks,
        reports[0].abandoned_blocks
    );
    assert!(
        reports[2].max_depth >= 2,
        "a 5-minute eclipse at 30% hash power should mine >= 2 island \
         blocks, got max depth {}",
        reports[2].max_depth
    );
    assert!(reports[2].p_revert(2) > reports[0].p_revert(2));
}

/// The streaming reorg reduction is merge-tree independent over real
/// campaign data: left-fold, right-fold, and sequential observation of
/// the same three campaigns produce identical reports.
#[test]
fn reorg_reduce_is_merge_tree_independent_on_real_campaigns() {
    use ethmeter::analysis::reorg::Reorg;
    let campaigns: Vec<_> = (1u64..=3)
        .map(|seed| {
            let script = DynamicsScript::new().eclipse_window(
                SimTime::ZERO + SimDuration::from_secs(30),
                SimDuration::from_secs(60),
                PoolId(0),
            );
            let s = Scenario::builder()
                .preset(Preset::Tiny)
                .seed(seed)
                .duration(SimDuration::from_mins(3))
                .pools(experiments::victim_vs_rest_pools(0.3, 2))
                .dynamics(script)
                .build();
            run_campaign(&s).campaign
        })
        .collect();
    let mut sequential = Reorg::new();
    let mut accs = Vec::new();
    for c in &campaigns {
        sequential.observe(c);
        let mut a = Reorg::new();
        a.observe(c);
        accs.push(a);
    }
    let [a, b, c] = <[Reorg; 3]>::try_from(accs).expect("three campaigns");
    let mut left = a.clone();
    left.merge(b.clone());
    left.merge(c.clone());
    let mut bc = b;
    bc.merge(c);
    let mut right = a;
    right.merge(bc);
    let expected = sequential.finish();
    assert_eq!(left.finish(), expected);
    assert_eq!(right.finish(), expected);
}

/// Snapshot of every node's peer set, order-independent.
fn peer_sets(world: &SimWorld, nodes: usize) -> Vec<std::collections::BTreeSet<NodeId>> {
    (0..nodes)
        .map(|i| world.peers_of(NodeId(i as u32)).iter().copied().collect())
        .collect()
}

#[cfg(test)]
mod proptests {
    use super::*;
    use ethmeter::types::Region;
    use proptest::prelude::*;

    proptest! {
        /// Random partition/heal + churn scripts (all windows closed
        /// before the deadline) must (a) restore every node's exact peer
        /// set — full reachability — and (b) keep the campaign
        /// fingerprint invariant between the sequential engine and a
        /// random shard count.
        #[test]
        fn healed_scripts_restore_topology_and_stay_shard_invariant(
            seed in 0u64..1_000_000,
            split_sel in 0u8..3,
            part_start in 5u64..20,
            part_secs in 5u64..25,
            churn_frac in 0u8..4,
            shards_sel in 0u8..3,
        ) {
            let east = match split_sel {
                0 => RegionMask::of(&[Region::EasternAsia, Region::SouthAsia, Region::Oceania]),
                1 => RegionMask::of(&[Region::NorthAmerica, Region::SouthAmerica]),
                _ => RegionMask::of(&[Region::WesternEurope, Region::CentralEurope, Region::EasternEurope]),
            };
            let secs = 75u64;
            let script = DynamicsScript::new()
                .partition_window(
                    SimTime::ZERO + SimDuration::from_secs(part_start),
                    SimDuration::from_secs(part_secs),
                    east,
                    east.complement(),
                )
                .churn(
                    seed ^ 0x9e3779b97f4a7c15,
                    16,
                    f64::from(churn_frac) * 0.1,
                    SimTime::ZERO + SimDuration::from_secs(5),
                    SimDuration::from_secs(30),
                    SimDuration::from_secs(20),
                );
            let build = |shards: usize| {
                Scenario::builder()
                    .preset(Preset::Tiny)
                    .seed(seed)
                    .duration(SimDuration::from_secs(secs))
                    .shards(shards)
                    .dynamics(script.clone())
                    .build()
            };

            // (a) Reachability: run the sequential world directly and
            // compare every post-heal peer set with the freshly built
            // topology.
            let scenario = build(1);
            let mut world = SimWorld::new(&scenario);
            let nodes = world.node_count();
            let before = peer_sets(&world, nodes);
            let initial = world.initial_events();
            let mut engine = Engine::new(world);
            for (t, e) in initial {
                engine.schedule(t, e);
            }
            engine.run_until(SimTime::ZERO + SimDuration::from_secs(secs));
            let world = engine.into_world();
            let after = peer_sets(&world, nodes);
            prop_assert_eq!(&after, &before);

            // (b) Sharded determinism under the same script.
            let shards = [2usize, 4, 8][shards_sel as usize];
            let sequential = run_campaign(&build(1));
            let sharded = run_campaign_sharded(&build(shards));
            prop_assert_eq!(sequential.stats, sharded.stats);
            prop_assert_eq!(sequential.events, sharded.events);
            prop_assert_eq!(
                sequential.campaign.fingerprint(),
                sharded.campaign.fingerprint()
            );
        }
    }
}
