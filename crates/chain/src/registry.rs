//! Campaign-global block and transaction registries with dense storage.
//!
//! The simulation world is the single producer of blocks and
//! transactions; these registries intern each artifact into a contiguous
//! `u32` slot ([`ethmeter_types::BlockIdx`] / [`ethmeter_types::TxIdx`])
//! at creation time. Everything downstream — per-node gossip state, wire
//! sizing, import scheduling — then addresses artifacts by slot (array
//! indexing) instead of by 64-bit hash (hash-map probing), which is the
//! core of the dense-state hot path.
//!
//! Hashes remain the boundary vocabulary: messages, observer logs, and
//! exported datasets all speak [`BlockHash`]/[`TxId`]; slots never leak
//! out of a single campaign.

use ethmeter_types::{BlockHash, BlockIdx, FxHashMap, Interner, TxId, TxIdx};

use crate::block::Block;
use crate::tx::Transaction;

/// Dense, append-only storage of every block produced in one campaign.
#[derive(Debug, Clone, Default)]
pub struct BlockRegistry {
    interner: Interner<BlockHash>,
    blocks: Vec<Block>,
}

impl BlockRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `block`, returning its dense slot. Re-inserting a hash
    /// already present keeps the first block (hashes are content-derived,
    /// so a duplicate hash is the same block).
    pub fn insert(&mut self, block: Block) -> BlockIdx {
        let slot = self.interner.intern(block.hash());
        if slot as usize == self.blocks.len() {
            self.blocks.push(block);
        }
        BlockIdx(slot)
    }

    /// The dense slot of `hash`, if registered.
    #[inline]
    pub fn idx_of(&self, hash: BlockHash) -> Option<BlockIdx> {
        self.interner.lookup(hash).map(BlockIdx)
    }

    /// Looks a block up by hash.
    #[inline]
    pub fn get(&self, hash: BlockHash) -> Option<&Block> {
        self.interner
            .lookup(hash)
            .map(|slot| &self.blocks[slot as usize])
    }

    /// The block in `idx`'s slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not issued by this registry.
    #[inline]
    pub fn by_idx(&self, idx: BlockIdx) -> &Block {
        &self.blocks[idx.index()]
    }

    /// Number of registered blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no block was registered.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// All registered blocks, in slot (= creation) order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Moves every block out, in slot order, leaving the interner behind.
    /// The registry is unusable afterwards until [`BlockRegistry::clear`]
    /// runs — this exists so the campaign boundary can materialize owned
    /// ground-truth blocks without cloning them.
    pub fn take_blocks(&mut self) -> Vec<Block> {
        std::mem::take(&mut self.blocks)
    }

    /// Forgets every block, retaining allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.interner.clear();
        self.blocks.clear();
    }
}

/// Dense, append-only storage of every transaction submitted in one
/// campaign.
///
/// The workload driver assigns [`TxId`]s sequentially from 1, so the
/// dense slot is simply `id - 1`: no interning table is needed at all,
/// and `TxId → Transaction` resolution is one bounds-checked array index.
/// [`TxRegistry::insert`] enforces the sequential contract.
#[derive(Debug, Clone, Default)]
pub struct TxRegistry {
    txs: Vec<Transaction>,
}

impl TxRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the next transaction, returning its dense slot.
    ///
    /// # Panics
    ///
    /// Panics if `tx.id` breaks the sequential-from-1 contract.
    pub fn insert(&mut self, tx: Transaction) -> TxIdx {
        let expected = self.txs.len() as u64 + 1;
        assert_eq!(
            tx.id.raw(),
            expected,
            "TxRegistry requires sequential ids (got {}, expected {expected})",
            tx.id
        );
        self.txs.push(tx);
        TxIdx((self.txs.len() - 1) as u32)
    }

    /// The dense slot of `id`, if registered.
    #[inline]
    pub fn idx_of(&self, id: TxId) -> Option<TxIdx> {
        let raw = id.raw();
        if raw >= 1 && raw <= self.txs.len() as u64 {
            Some(TxIdx((raw - 1) as u32))
        } else {
            None
        }
    }

    /// Looks a transaction up by id.
    #[inline]
    pub fn get(&self, id: TxId) -> Option<&Transaction> {
        self.idx_of(id).map(|idx| &self.txs[idx.index()])
    }

    /// The transaction in `idx`'s slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not issued by this registry.
    #[inline]
    pub fn by_idx(&self, idx: TxIdx) -> &Transaction {
        &self.txs[idx.index()]
    }

    /// Number of registered transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True if no transaction was registered.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// All transactions in slot (= id) order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> + '_ {
        self.txs.iter()
    }

    /// Forgets every transaction, retaining allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.txs.clear();
    }

    /// Converts into the boundary representation used by exported ground
    /// truth (analysis consumes a `TxId`-keyed map).
    pub fn into_map(self) -> FxHashMap<TxId, Transaction> {
        self.txs.into_iter().map(|t| (t.id, t)).collect()
    }

    /// [`TxRegistry::into_map`] by cloning, leaving the registry intact —
    /// the campaign boundary for reused worlds, which keep their registry
    /// allocation across runs.
    pub fn to_map(&self) -> FxHashMap<TxId, Transaction> {
        self.txs.iter().map(|t| (t.id, t.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use ethmeter_types::{AccountId, ByteSize, NodeId, PoolId, SimTime};

    fn block(salt: u64) -> Block {
        BlockBuilder::new(BlockHash(1), 1, PoolId(0))
            .salt(salt)
            .build()
    }

    fn tx(id: u64) -> Transaction {
        Transaction {
            id: TxId(id),
            sender: AccountId(1),
            nonce: 0,
            gas_price: 1,
            gas: 21_000,
            size: ByteSize::from_bytes(180),
            submitted_at: SimTime::ZERO,
            origin: NodeId(0),
        }
    }

    #[test]
    fn blocks_intern_densely_and_resolve_both_ways() {
        let mut reg = BlockRegistry::new();
        assert!(reg.is_empty());
        let a = block(1);
        let b = block(2);
        let ia = reg.insert(a.clone());
        let ib = reg.insert(b.clone());
        assert_eq!((ia, ib), (BlockIdx(0), BlockIdx(1)));
        assert_eq!(reg.insert(a.clone()), ia, "re-insert keeps the slot");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.idx_of(a.hash()), Some(ia));
        assert_eq!(reg.idx_of(BlockHash(999)), None);
        assert_eq!(reg.by_idx(ib).hash(), b.hash());
        assert_eq!(reg.get(a.hash()).expect("present").hash(), a.hash());
    }

    #[test]
    fn txs_enforce_sequential_contract() {
        let mut reg = TxRegistry::new();
        assert_eq!(reg.insert(tx(1)), TxIdx(0));
        assert_eq!(reg.insert(tx(2)), TxIdx(1));
        assert_eq!(reg.idx_of(TxId(2)), Some(TxIdx(1)));
        assert_eq!(reg.idx_of(TxId(0)), None);
        assert_eq!(reg.idx_of(TxId(3)), None);
        assert_eq!(reg.by_idx(TxIdx(0)).id, TxId(1));
        assert_eq!(reg.get(TxId(2)).expect("present").id, TxId(2));
        assert_eq!(reg.iter().count(), 2);
        let map = reg.into_map();
        assert_eq!(map.len(), 2);
        assert_eq!(map[&TxId(1)].id, TxId(1));
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn out_of_order_tx_id_rejected() {
        let mut reg = TxRegistry::new();
        reg.insert(tx(5));
    }
}
