//! Table II: redundant block receptions at a default-peers client.
//!
//! "We are interested in knowing how many redundant blocks a node with
//! default settings receives" (§III-A2). The input is the campaign's
//! complementary observer running Geth's default 25 peers; per block we
//! count announcement and whole-block receptions and report the paper's
//! four statistics (average, median, top-10%, top-1%).

use std::fmt;

use ethmeter_measure::{CampaignData, ObserverLog};
use ethmeter_stats::table::{f3, Table};
use ethmeter_stats::Summary;

use crate::Reduce;

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct RedundancyRow {
    /// Mean receptions per block.
    pub avg: f64,
    /// Median receptions per block.
    pub median: f64,
    /// 90th percentile ("Top 10%").
    pub p90: f64,
    /// 99th percentile ("Top 1%").
    pub p99: f64,
}

impl RedundancyRow {
    fn from_summary(s: &Summary) -> Self {
        RedundancyRow {
            avg: s.mean(),
            median: s.median(),
            p90: s.quantile(0.90),
            p99: s.quantile(0.99),
        }
    }
}

/// Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct RedundancyReport {
    /// Hash-only announcements per block.
    pub announcements: RedundancyRow,
    /// Header+body messages per block.
    pub whole_blocks: RedundancyRow,
    /// Both kinds combined.
    pub combined: RedundancyRow,
    /// Blocks the observer received at least once.
    pub blocks: u64,
}

/// Errors from the redundancy analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedundancyError {
    /// The campaign deployed no default-peers observer.
    NoDefaultObserver,
    /// The observer saw no blocks.
    EmptyLog,
}

impl fmt::Display for RedundancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedundancyError::NoDefaultObserver => {
                write!(f, "campaign has no default-peers observer")
            }
            RedundancyError::EmptyLog => write!(f, "default-peers observer saw no blocks"),
        }
    }
}

impl std::error::Error for RedundancyError {}

/// Computes Table II.
///
/// # Errors
///
/// [`RedundancyError::NoDefaultObserver`] if the campaign lacks the
/// complementary observer, [`RedundancyError::EmptyLog`] if it saw
/// nothing.
pub fn analyze(data: &CampaignData) -> Result<RedundancyReport, RedundancyError> {
    let mut acc = Redundancy::new();
    acc.observe(data);
    acc.finish()
}

/// Per-block reception summaries of one observer log:
/// `(announcements, whole blocks, both combined)`.
///
/// One pass over [`ObserverLog::scan_blocks`], so a spilled log reads
/// identically to an in-memory one and raw rows are never collected.
fn reception_summaries(log: &ObserverLog) -> (Summary, Summary, Summary) {
    let mut ann: Vec<f64> = Vec::new();
    let mut full: Vec<f64> = Vec::new();
    let mut both: Vec<f64> = Vec::new();
    for r in log.scan_blocks() {
        ann.push(f64::from(r.announces));
        full.push(f64::from(r.full_blocks));
        both.push(f64::from(r.total_receptions()));
    }
    (
        Summary::from_values(ann),
        Summary::from_values(full),
        Summary::from_values(both),
    )
}

/// Streaming Table II across many campaigns: per-block reception samples
/// pooled over every run's default-peers observer.
#[derive(Debug, Clone)]
pub struct Redundancy {
    announces: Summary,
    whole_blocks: Summary,
    combined: Summary,
    blocks: u64,
    saw_observer: bool,
}

impl Redundancy {
    /// An accumulator over zero campaigns.
    pub fn new() -> Self {
        let empty = || Summary::from_values(std::iter::empty());
        Redundancy {
            announces: empty(),
            whole_blocks: empty(),
            combined: empty(),
            blocks: 0,
            saw_observer: false,
        }
    }
}

impl Default for Redundancy {
    fn default() -> Self {
        Self::new()
    }
}

impl Reduce for Redundancy {
    type Report = Result<RedundancyReport, RedundancyError>;

    fn observe(&mut self, data: &CampaignData) {
        let Some((_, log)) = data.redundancy_observer() else {
            return;
        };
        self.saw_observer = true;
        if log.block_count() == 0 {
            return;
        }
        let (ann, full, both) = reception_summaries(log);
        self.announces.merge(&ann);
        self.whole_blocks.merge(&full);
        self.combined.merge(&both);
        self.blocks += log.block_count() as u64;
    }

    fn merge(&mut self, other: Self) {
        self.announces.merge(&other.announces);
        self.whole_blocks.merge(&other.whole_blocks);
        self.combined.merge(&other.combined);
        self.blocks += other.blocks;
        self.saw_observer |= other.saw_observer;
    }

    fn finish(self) -> Result<RedundancyReport, RedundancyError> {
        if self.blocks == 0 {
            return Err(if self.saw_observer {
                RedundancyError::EmptyLog
            } else {
                RedundancyError::NoDefaultObserver
            });
        }
        Ok(RedundancyReport {
            announcements: RedundancyRow::from_summary(&self.announces),
            whole_blocks: RedundancyRow::from_summary(&self.whole_blocks),
            combined: RedundancyRow::from_summary(&self.combined),
            blocks: self.blocks,
        })
    }
}

impl fmt::Display for RedundancyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II — redundant block receptions ({} blocks, 25-peer observer)",
            self.blocks
        )?;
        let mut t = Table::new(vec!["Message Type", "Avg.", "Med.", "Top 10%", "Top 1%"]);
        for (name, row) in [
            ("Announcements", &self.announcements),
            ("Whole Blocks", &self.whole_blocks),
            ("Both combined", &self.combined),
        ] {
            t.row(vec![
                name.into(),
                f3(row.avg),
                format!("{:.0}", row.median),
                format!("{:.0}", row.p90),
                format!("{:.0}", row.p99),
            ]);
        }
        writeln!(f, "{t}")?;
        write!(
            f,
            "(paper: announcements 2.585/2/5/7, whole blocks 7.043/7/10/12, both 9.11/9/12/15)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use ethmeter_measure::{BlockMsgKind, ObserverLog, VantagePoint};
    use ethmeter_types::{NodeId, SimTime};

    fn campaign_with_redundancy() -> ethmeter_measure::CampaignData {
        let mut data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        let mut log = ObserverLog::new();
        // Every block: 2 announcements + 7 whole blocks, except the last
        // block which gets 4 + 9.
        let hashes: Vec<_> = data
            .truth
            .tree
            .canonical_blocks()
            .filter(|b| b.number() > 0)
            .map(|b| b.hash())
            .collect();
        for (i, &h) in hashes.iter().enumerate() {
            let last = i == hashes.len() - 1;
            let (na, nf) = if last { (4, 9) } else { (2, 7) };
            for k in 0..na {
                log.record_block_msg(
                    h,
                    BlockMsgKind::Announce,
                    NodeId(k),
                    SimTime::from_secs(i as u64 + 1),
                    SimTime::from_secs(i as u64 + 1),
                );
            }
            for k in 0..nf {
                log.record_block_msg(
                    h,
                    BlockMsgKind::FullBlock,
                    NodeId(100 + k),
                    SimTime::from_secs(i as u64 + 1),
                    SimTime::from_secs(i as u64 + 1),
                );
            }
        }
        data.observers.push((VantagePoint::paper_redundancy(), log));
        data
    }

    #[test]
    fn rows_match_hand_computation() {
        let data = campaign_with_redundancy();
        let r = analyze(&data).expect("observer present");
        assert_eq!(r.blocks, testutil::BLOCKS as u64);
        // 19 blocks at 2 announcements, 1 at 4: mean = (19*2 + 4)/20 = 2.1.
        assert!((r.announcements.avg - 2.1).abs() < 1e-9);
        assert_eq!(r.announcements.median, 2.0);
        assert_eq!(r.announcements.p99, 4.0);
        // Whole blocks: 19 * 7 + 9 -> mean 7.1.
        assert!((r.whole_blocks.avg - 7.1).abs() < 1e-9);
        assert_eq!(r.whole_blocks.median, 7.0);
        // Combined: 19 * 9 + 13 -> mean 9.2.
        assert!((r.combined.avg - 9.2).abs() < 1e-9);
        // More whole blocks than announcements — the paper's qualitative
        // finding.
        assert!(r.whole_blocks.avg > r.announcements.avg);
    }

    #[test]
    fn missing_observer_is_an_error() {
        let data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        assert_eq!(analyze(&data), Err(RedundancyError::NoDefaultObserver));
    }

    #[test]
    fn empty_log_is_an_error() {
        let mut data = testutil::campaign_with_block_spread(&[0, 100, 40, 60]);
        data.observers
            .push((VantagePoint::paper_redundancy(), ObserverLog::new()));
        assert_eq!(analyze(&data), Err(RedundancyError::EmptyLog));
    }

    #[test]
    fn streamed_reduction_pools_samples_across_runs() {
        let data = campaign_with_redundancy();
        // Two observations of the same campaign double every sample.
        let mut acc = Redundancy::new();
        acc.observe(&data);
        acc.observe(&data);
        let r = acc.finish().expect("data present");
        let single = analyze(&data).expect("ok");
        assert_eq!(r.blocks, 2 * single.blocks);
        assert!((r.announcements.avg - single.announcements.avg).abs() < 1e-12);
        assert_eq!(r.whole_blocks.median, single.whole_blocks.median);
        // A run without the observer neither errors nor perturbs totals.
        let mut mixed = Redundancy::new();
        mixed.observe(&testutil::campaign_with_block_spread(&[0, 100, 40, 60]));
        mixed.observe(&data);
        assert_eq!(mixed.finish().expect("ok"), single);
        // No runs with data at all: error mirrors the one-shot behavior.
        assert_eq!(
            Redundancy::new().finish(),
            Err(RedundancyError::NoDefaultObserver)
        );
    }

    #[test]
    fn display_prints_table() {
        let data = campaign_with_redundancy();
        let r = analyze(&data).expect("ok");
        let s = r.to_string();
        assert!(s.contains("Table II"));
        assert!(s.contains("Announcements"));
        assert!(s.contains("Whole Blocks"));
    }
}
