//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! renames this crate to `criterion` (see the root
//! `[workspace.dependencies]`) and the benches in `crates/bench/benches/`
//! compile and run unchanged. The shim implements the API surface those
//! benches use — [`Criterion::benchmark_group`], [`BenchmarkGroup`]'s
//! `sample_size`/`bench_function`/`finish`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — and reports
//! wall-clock per-iteration medians. It is a measurement harness, not a
//! statistics engine: there is no outlier analysis, plotting, or saved
//! baselines.
//!
//! Beyond the upstream API, the shim records every completed benchmark as
//! a [`BenchResult`] retrievable through [`Criterion::results`], so a
//! `harness = false` bench `main` can post-process its own measurements
//! (e.g. derive events/sec and emit a machine-readable report).
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// The recorded outcome of one benchmark run by the shim.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, as passed to `bench_function`.
    pub name: String,
    /// Median per-iteration wall time across the samples.
    pub median: Duration,
    /// Fastest sample observed.
    pub min: Duration,
    /// Number of timed samples (warm-up excluded).
    pub samples: u32,
}

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            samples: 20,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self.default_samples();
        let r = run_one(name, samples, f);
        self.results.push(r);
        self
    }

    /// Every benchmark completed through this `Criterion` so far, in run
    /// order. Shim extension (upstream criterion persists to disk
    /// instead); lets a custom bench `main` derive throughput reports.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Looks a completed benchmark up by name. Shim extension.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }

    fn default_samples(&self) -> u32 {
        20
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    samples: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2) as u32;
        self
    }

    /// Runs one benchmark and prints its per-iteration median.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let r = run_one(name, self.samples, f);
        self.criterion.results.push(r);
        self
    }

    /// Ends the group (output-only in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: u32, mut f: F) -> BenchResult {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples as usize),
    };
    // One warm-up sample, discarded.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..samples {
        f(&mut bencher);
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    println!("  {name}: median {median:?} over {samples} samples");
    BenchResult {
        name: name.to_string(),
        median,
        min,
        samples,
    }
}

/// Times closures; one [`Bencher::iter`] call records one sample.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (criterion runs many iterations
    /// per sample; the shim records a single-iteration sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(out);
    }
}

/// Declares a benchmark group runner (shim for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` (shim for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        // 3 samples + 1 warm-up.
        assert_eq!(runs, 4);
        let r = c.result("count").expect("recorded");
        assert_eq!(r.samples, 3);
        assert!(r.min <= r.median);
        assert!(c.result("missing").is_none());
    }

    #[test]
    fn ungrouped_benches_record_results() {
        let mut c = Criterion::default();
        c.bench_function("solo", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].name, "solo");
        assert_eq!(c.results()[0].samples, 20);
    }
}
