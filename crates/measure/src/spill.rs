//! Columnar on-disk spill segments for observer logs.
//!
//! A planet-scale campaign observes far more block/tx receptions than the
//! in-memory record maps can hold under a measurement budget. When a
//! budgeted [`ObserverLog`](crate::ObserverLog) overflows, it drains its
//! maps into an immutable on-disk **segment**: a fixed-width columnar file
//! (one contiguous little-endian column per record field) whose rows are
//! sorted by key. Scans later k-way merge the segments with the residual
//! in-memory rows in ascending key order, so reports stream over the
//! union without ever re-materializing the raw rows.
//!
//! Determinism contract:
//!
//! - **File naming** is a pure function of the caller-provided spill dir,
//!   the observer's identity prefix, and the flush ordinal — no PIDs,
//!   clocks, or temp-name entropy.
//! - **Flush points** are a pure function of the record stream (an
//!   estimated record byte count crosses the budget), never of allocator
//!   or OS state.
//! - **Scan order** is ascending key, with duplicate block keys folded in
//!   segment creation order (oldest first, in-memory rows last) under the
//!   same first-reception-wins rule as live recording — so a spilled log
//!   scans bit-identically to an unspilled one.
//!
//! Segment files are reference-counted: clones of a log (and the
//! [`CampaignData`](crate::CampaignData) extracted from it) share the
//! same immutable segments, and the file is unlinked when the last
//! reference drops.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ethmeter_types::{BlockHash, NodeId, SimTime, TxId};

use crate::log::{BlockMsgKind, BlockRecord, TxRecord};

/// Spill policy of one observer log.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory receiving segment files (created on first flush).
    pub dir: PathBuf,
    /// Estimated in-memory record bytes that trigger a flush.
    pub budget_bytes: usize,
    /// Deterministic file-name prefix identifying this log (sanitized
    /// vantage name plus campaign epoch).
    pub prefix: String,
}

impl SpillConfig {
    /// Replaces every non-alphanumeric byte of `name` with `-` so vantage
    /// names are safe as file-name components.
    pub fn sanitize(name: &str) -> String {
        name.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect()
    }
}

/// Rows decoded per column read — bounds scan memory to a few records'
/// worth per open segment regardless of segment size.
const CHUNK_ROWS: usize = 1024;

fn read_exact(file: &mut File, path: &Path, off: u64, buf: &mut [u8]) {
    file.seek(SeekFrom::Start(off))
        .and_then(|_| file.read_exact(buf))
        .unwrap_or_else(|e| panic!("spill segment read {}: {e}", path.display()));
}

fn decode_u64(bytes: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("u64 column"))
}

fn decode_u32(bytes: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("u32 column"))
}

/// An immutable sorted block segment on disk. The file is unlinked when
/// the last [`Arc`] reference drops.
pub(crate) struct BlockSegment {
    path: PathBuf,
    /// Ascending hash column, retained in memory as the dedup/count
    /// filter (8 bytes per distinct key — the only per-row state a
    /// spilled log keeps resident).
    keys: Vec<BlockHash>,
}

impl std::fmt::Debug for BlockSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BlockSegment({}, {} rows)",
            self.path.display(),
            self.keys.len()
        )
    }
}

impl Drop for BlockSegment {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

// Column widths of the block segment layout, in declaration order:
// hash u64 | first_local u64 | first_true u64 | first_kind u8 |
// first_from u32 | announces u32 | full_blocks u32.
const BLK_ROW_BYTES: u64 = 8 + 8 + 8 + 1 + 4 + 4 + 4;

impl BlockSegment {
    /// Writes `rows` (pre-sorted ascending by hash) as one columnar file.
    pub(crate) fn write(dir: &Path, name: &str, rows: &[BlockRecord]) -> Arc<BlockSegment> {
        debug_assert!(rows.windows(2).all(|w| w[0].hash < w[1].hash));
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("spill dir {}: {e}", dir.display()));
        let path = dir.join(name);
        let mut buf = Vec::with_capacity(rows.len() * BLK_ROW_BYTES as usize);
        for r in rows {
            buf.extend_from_slice(&r.hash.raw().to_le_bytes());
        }
        for r in rows {
            buf.extend_from_slice(&r.first_local.as_nanos().to_le_bytes());
        }
        for r in rows {
            buf.extend_from_slice(&r.first_true.as_nanos().to_le_bytes());
        }
        for r in rows {
            buf.push(match r.first_kind {
                BlockMsgKind::Announce => 0,
                BlockMsgKind::FullBlock => 1,
            });
        }
        for r in rows {
            buf.extend_from_slice(&r.first_from.raw().to_le_bytes());
        }
        for r in rows {
            buf.extend_from_slice(&r.announces.to_le_bytes());
        }
        for r in rows {
            buf.extend_from_slice(&r.full_blocks.to_le_bytes());
        }
        File::create(&path)
            .and_then(|mut f| f.write_all(&buf))
            .unwrap_or_else(|e| panic!("spill segment write {}: {e}", path.display()));
        Arc::new(BlockSegment {
            path,
            keys: rows.iter().map(|r| r.hash).collect(),
        })
    }

    /// Number of rows.
    pub(crate) fn rows(&self) -> usize {
        self.keys.len()
    }

    /// True if `hash` has a row in this segment.
    pub(crate) fn contains(&self, hash: BlockHash) -> bool {
        self.keys.binary_search(&hash).is_ok()
    }

    /// Opens a chunked ascending scan.
    fn scan(self: &Arc<Self>) -> BlockSegmentScan {
        let file = File::open(&self.path)
            .unwrap_or_else(|e| panic!("spill segment open {}: {e}", self.path.display()));
        BlockSegmentScan {
            seg: Arc::clone(self),
            file,
            next_row: 0,
            buf: Vec::new(),
            buf_pos: 0,
        }
    }
}

/// Chunked reader over one block segment, yielding rows in key order.
struct BlockSegmentScan {
    seg: Arc<BlockSegment>,
    file: File,
    next_row: usize,
    buf: Vec<BlockRecord>,
    buf_pos: usize,
}

impl BlockSegmentScan {
    fn refill(&mut self) {
        let rows = self.seg.rows();
        let n = CHUNK_ROWS.min(rows - self.next_row);
        let at = self.next_row as u64;
        let rows64 = rows as u64;
        let path = &self.seg.path;
        // Per-column chunk reads: column base offsets follow the layout
        // in `BLK_ROW_BYTES`'s comment.
        let mut local = vec![0u8; n * 8];
        read_exact(&mut self.file, path, 8 * rows64 + at * 8, &mut local);
        let mut truet = vec![0u8; n * 8];
        read_exact(&mut self.file, path, 16 * rows64 + at * 8, &mut truet);
        let mut kind = vec![0u8; n];
        read_exact(&mut self.file, path, 24 * rows64 + at, &mut kind);
        let mut from = vec![0u8; n * 4];
        read_exact(&mut self.file, path, 25 * rows64 + at * 4, &mut from);
        let mut ann = vec![0u8; n * 4];
        read_exact(&mut self.file, path, 29 * rows64 + at * 4, &mut ann);
        let mut full = vec![0u8; n * 4];
        read_exact(&mut self.file, path, 33 * rows64 + at * 4, &mut full);
        self.buf.clear();
        for (i, &k) in kind.iter().enumerate() {
            self.buf.push(BlockRecord {
                hash: self.seg.keys[self.next_row + i],
                first_local: SimTime::from_nanos(decode_u64(&local, i)),
                first_true: SimTime::from_nanos(decode_u64(&truet, i)),
                first_kind: match k {
                    0 => BlockMsgKind::Announce,
                    1 => BlockMsgKind::FullBlock,
                    k => panic!("corrupt spill segment {}: kind {k}", path.display()),
                },
                first_from: NodeId(decode_u32(&from, i)),
                announces: decode_u32(&ann, i),
                full_blocks: decode_u32(&full, i),
            });
        }
        self.next_row += n;
        self.buf_pos = 0;
    }

    fn peek(&mut self) -> Option<&BlockRecord> {
        if self.buf_pos == self.buf.len() {
            if self.next_row == self.seg.rows() {
                return None;
            }
            self.refill();
        }
        Some(&self.buf[self.buf_pos])
    }

    fn pop(&mut self) -> BlockRecord {
        let r = self.buf[self.buf_pos];
        self.buf_pos += 1;
        r
    }
}

/// An immutable sorted transaction segment on disk (unlinked when the
/// last reference drops).
pub(crate) struct TxSegment {
    path: PathBuf,
    /// Ascending id column, resident as the global first-reception dedup
    /// filter.
    keys: Vec<TxId>,
}

impl std::fmt::Debug for TxSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TxSegment({}, {} rows)",
            self.path.display(),
            self.keys.len()
        )
    }
}

impl Drop for TxSegment {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

// Column layout: id u64 | first_local u64 | first_true u64 | from u32 |
// arrival_seq u64.
const TX_ROW_BYTES: u64 = 8 + 8 + 8 + 4 + 8;

impl TxSegment {
    /// Writes `rows` (pre-sorted ascending by id) as one columnar file.
    pub(crate) fn write(dir: &Path, name: &str, rows: &[TxRecord]) -> Arc<TxSegment> {
        debug_assert!(rows.windows(2).all(|w| w[0].id < w[1].id));
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("spill dir {}: {e}", dir.display()));
        let path = dir.join(name);
        let mut buf = Vec::with_capacity(rows.len() * TX_ROW_BYTES as usize);
        for r in rows {
            buf.extend_from_slice(&r.id.raw().to_le_bytes());
        }
        for r in rows {
            buf.extend_from_slice(&r.first_local.as_nanos().to_le_bytes());
        }
        for r in rows {
            buf.extend_from_slice(&r.first_true.as_nanos().to_le_bytes());
        }
        for r in rows {
            buf.extend_from_slice(&r.from.raw().to_le_bytes());
        }
        for r in rows {
            buf.extend_from_slice(&r.arrival_seq.to_le_bytes());
        }
        File::create(&path)
            .and_then(|mut f| f.write_all(&buf))
            .unwrap_or_else(|e| panic!("spill segment write {}: {e}", path.display()));
        Arc::new(TxSegment {
            path,
            keys: rows.iter().map(|r| r.id).collect(),
        })
    }

    /// Number of rows.
    pub(crate) fn rows(&self) -> usize {
        self.keys.len()
    }

    /// True if `id` has a row in this segment.
    pub(crate) fn contains(&self, id: TxId) -> bool {
        self.keys.binary_search(&id).is_ok()
    }

    fn scan(self: &Arc<Self>) -> TxSegmentScan {
        let file = File::open(&self.path)
            .unwrap_or_else(|e| panic!("spill segment open {}: {e}", self.path.display()));
        TxSegmentScan {
            seg: Arc::clone(self),
            file,
            next_row: 0,
            buf: Vec::new(),
            buf_pos: 0,
        }
    }
}

/// Chunked reader over one tx segment, yielding rows in key order.
struct TxSegmentScan {
    seg: Arc<TxSegment>,
    file: File,
    next_row: usize,
    buf: Vec<TxRecord>,
    buf_pos: usize,
}

impl TxSegmentScan {
    fn refill(&mut self) {
        let rows = self.seg.rows();
        let n = CHUNK_ROWS.min(rows - self.next_row);
        let at = self.next_row as u64;
        let rows64 = rows as u64;
        let path = &self.seg.path;
        let mut local = vec![0u8; n * 8];
        read_exact(&mut self.file, path, 8 * rows64 + at * 8, &mut local);
        let mut truet = vec![0u8; n * 8];
        read_exact(&mut self.file, path, 16 * rows64 + at * 8, &mut truet);
        let mut from = vec![0u8; n * 4];
        read_exact(&mut self.file, path, 24 * rows64 + at * 4, &mut from);
        let mut seq = vec![0u8; n * 8];
        read_exact(&mut self.file, path, 28 * rows64 + at * 8, &mut seq);
        self.buf.clear();
        for i in 0..n {
            self.buf.push(TxRecord {
                id: self.seg.keys[self.next_row + i],
                first_local: SimTime::from_nanos(decode_u64(&local, i)),
                first_true: SimTime::from_nanos(decode_u64(&truet, i)),
                from: NodeId(decode_u32(&from, i)),
                arrival_seq: decode_u64(&seq, i),
            });
        }
        self.next_row += n;
        self.buf_pos = 0;
    }

    fn peek(&mut self) -> Option<&TxRecord> {
        if self.buf_pos == self.buf.len() {
            if self.next_row == self.seg.rows() {
                return None;
            }
            self.refill();
        }
        Some(&self.buf[self.buf_pos])
    }

    fn pop(&mut self) -> TxRecord {
        let r = self.buf[self.buf_pos];
        self.buf_pos += 1;
        r
    }
}

/// Ascending-hash merge over spilled segments plus the residual in-memory
/// rows, folding duplicate keys under live recording's
/// first-reception-wins rule. Yields each distinct block exactly once.
pub struct BlockScan {
    segs: Vec<BlockSegmentScan>,
    mem: std::vec::IntoIter<BlockRecord>,
    mem_peek: Option<BlockRecord>,
}

/// Builds a [`BlockScan`] over `segments` (creation order) and `mem`
/// (pre-sorted ascending by hash).
pub(crate) fn merge_block_scan(segments: &[Arc<BlockSegment>], mem: Vec<BlockRecord>) -> BlockScan {
    let mut mem = mem.into_iter();
    let mem_peek = mem.next();
    BlockScan {
        segs: segments.iter().map(BlockSegment::scan).collect(),
        mem,
        mem_peek,
    }
}

impl Iterator for BlockScan {
    type Item = BlockRecord;

    fn next(&mut self) -> Option<BlockRecord> {
        // Minimum key across all sources.
        let mut min: Option<BlockHash> = self.mem_peek.map(|r| r.hash);
        for s in &mut self.segs {
            if let Some(r) = s.peek() {
                min = Some(match min {
                    Some(m) => m.min(r.hash),
                    None => r.hash,
                });
            }
        }
        let min = min?;
        // Fold duplicates in segment creation order, in-memory rows last —
        // the same chronology live recording folds in, so first-reception
        // ties resolve identically.
        let mut acc: Option<BlockRecord> = None;
        for s in &mut self.segs {
            if s.peek().is_some_and(|r| r.hash == min) {
                let r = s.pop();
                acc = Some(match acc {
                    None => r,
                    Some(a) => fold_block(a, r),
                });
            }
        }
        if self.mem_peek.is_some_and(|r| r.hash == min) {
            let r = self.mem_peek.take().expect("peeked");
            self.mem_peek = self.mem.next();
            acc = Some(match acc {
                None => r,
                Some(a) => fold_block(a, r),
            });
        }
        acc
    }
}

/// Folds a later partial record into an earlier one, mirroring
/// [`ObserverLog::record_block_msg`](crate::ObserverLog::record_block_msg):
/// counters sum; the first-reception fields are replaced only by a
/// strictly earlier true time, so the earlier record wins ties.
fn fold_block(mut acc: BlockRecord, later: BlockRecord) -> BlockRecord {
    acc.announces += later.announces;
    acc.full_blocks += later.full_blocks;
    if later.first_true < acc.first_true {
        acc.first_true = later.first_true;
        acc.first_local = later.first_local;
        acc.first_kind = later.first_kind;
        acc.first_from = later.first_from;
    }
    acc
}

/// Ascending-id merge over spilled tx segments plus the residual
/// in-memory rows. Transaction ids are globally unique across sources
/// (recording dedups against the segment filters), so no folding occurs.
pub struct TxScan {
    segs: Vec<TxSegmentScan>,
    mem: std::vec::IntoIter<TxRecord>,
    mem_peek: Option<TxRecord>,
}

/// Builds a [`TxScan`] over `segments` and `mem` (pre-sorted ascending
/// by id).
pub(crate) fn merge_tx_scan(segments: &[Arc<TxSegment>], mem: Vec<TxRecord>) -> TxScan {
    let mut mem = mem.into_iter();
    let mem_peek = mem.next();
    TxScan {
        segs: segments.iter().map(TxSegment::scan).collect(),
        mem,
        mem_peek,
    }
}

impl Iterator for TxScan {
    type Item = TxRecord;

    fn next(&mut self) -> Option<TxRecord> {
        let mut best: Option<(TxId, usize)> = self.mem_peek.map(|r| (r.id, usize::MAX));
        for (i, s) in self.segs.iter_mut().enumerate() {
            if let Some(r) = s.peek() {
                if best.is_none_or(|(id, _)| r.id < id) {
                    best = Some((r.id, i));
                }
            }
        }
        let (_, src) = best?;
        if src == usize::MAX {
            let r = self.mem_peek.take().expect("peeked");
            self.mem_peek = self.mem.next();
            Some(r)
        } else {
            Some(self.segs[src].pop())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn blk(hash: u64, first_ms: u64, ann: u32, full: u32) -> BlockRecord {
        BlockRecord {
            hash: BlockHash(hash),
            first_local: t(first_ms + 1),
            first_true: t(first_ms),
            first_kind: BlockMsgKind::Announce,
            first_from: NodeId(7),
            announces: ann,
            full_blocks: full,
        }
    }

    fn tx(id: u64, seq: u64) -> TxRecord {
        TxRecord {
            id: TxId(id),
            first_local: t(id + 1),
            first_true: t(id),
            from: NodeId(3),
            arrival_seq: seq,
        }
    }

    #[test]
    fn block_segment_roundtrips_and_unlinks_on_drop() {
        let dir = std::env::temp_dir().join("ethmeter-spill-test-blk");
        let rows: Vec<BlockRecord> = (0..2500).map(|i| blk(i * 3, i, 1, 2)).collect();
        let seg = BlockSegment::write(&dir, "a.blk0000.seg", &rows);
        let path = seg.path.clone();
        assert!(path.exists());
        assert_eq!(seg.rows(), 2500);
        assert!(seg.contains(BlockHash(3)));
        assert!(!seg.contains(BlockHash(4)));
        let back: Vec<BlockRecord> = merge_block_scan(&[seg], Vec::new()).collect();
        assert_eq!(back, rows);
        assert!(!path.exists(), "file unlinked once the last Arc dropped");
    }

    #[test]
    fn tx_segment_roundtrips() {
        let dir = std::env::temp_dir().join("ethmeter-spill-test-tx");
        let rows: Vec<TxRecord> = (0..2100).map(|i| tx(i * 2 + 1, i)).collect();
        let seg = TxSegment::write(&dir, "a.txs0000.seg", &rows);
        let back: Vec<TxRecord> = merge_tx_scan(&[seg], Vec::new()).collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn block_merge_folds_duplicates_in_segment_order() {
        let dir = std::env::temp_dir().join("ethmeter-spill-test-fold");
        // Segment 0 saw block 5 first (earlier true time wins ties), then
        // segment 1 and the in-memory residue saw it again.
        let s0 = BlockSegment::write(&dir, "f.blk0000.seg", &[blk(5, 10, 2, 0)]);
        let s1 = BlockSegment::write(&dir, "f.blk0001.seg", &[blk(3, 40, 1, 0), blk(5, 20, 0, 3)]);
        let mem = vec![blk(5, 10, 1, 1)]; // same true time as segment 0: earlier record keeps the win
        let out: Vec<BlockRecord> = merge_block_scan(&[s0, s1], mem).collect();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].hash, BlockHash(3));
        let five = out[1];
        assert_eq!(five.hash, BlockHash(5));
        assert_eq!(five.announces, 3);
        assert_eq!(five.full_blocks, 4);
        assert_eq!(five.first_true, t(10));
        assert_eq!(
            five.first_local,
            t(11),
            "tie kept the oldest segment's first"
        );
    }

    #[test]
    fn tx_merge_interleaves_sources_in_id_order() {
        let dir = std::env::temp_dir().join("ethmeter-spill-test-txmerge");
        let s0 = TxSegment::write(&dir, "m.txs0000.seg", &[tx(2, 0), tx(8, 1)]);
        let s1 = TxSegment::write(&dir, "m.txs0001.seg", &[tx(4, 2)]);
        let mem = vec![tx(1, 3), tx(9, 4)];
        let ids: Vec<u64> = merge_tx_scan(&[s0, s1], mem).map(|r| r.id.raw()).collect();
        assert_eq!(ids, vec![1, 2, 4, 8, 9]);
    }

    #[test]
    fn sanitize_keeps_names_filesystem_safe() {
        assert_eq!(SpillConfig::sanitize("EA"), "EA");
        assert_eq!(
            SpillConfig::sanitize("default peers/v1"),
            "default-peers-v1"
        );
    }
}
