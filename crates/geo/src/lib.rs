//! Geography substrate: inter-region latency, bandwidth, and clock models.
//!
//! The paper's central finding is that *where* a node sits determines how
//! fast it hears about new blocks, because mining-pool gateways cluster in a
//! few geographic hot-spots. This crate supplies the physical layer that
//! makes those effects emerge in simulation:
//!
//! - [`latency::LatencyModel`]: a base one-way delay matrix over
//!   [`ethmeter_types::Region`]s (calibrated to public backbone RTTs) plus
//!   log-normal jitter;
//! - [`bandwidth::BandwidthClass`]: per-node access capacity, which turns
//!   block size into serialization delay (why empty blocks spread faster);
//! - [`clock::ClockModel`]: NTP-style clock offsets for measurement nodes,
//!   matching the paper's "offsets < 10 ms in 90% of cases, < 100 ms in 99%"
//!   characterization (§II) and surfacing as Figure 2's error bars.
//!
//! # Example
//!
//! ```
//! use ethmeter_geo::latency::LatencyModel;
//! use ethmeter_sim::Xoshiro256;
//! use ethmeter_types::Region;
//!
//! let model = LatencyModel::default();
//! let mut rng = Xoshiro256::seed_from_u64(1);
//! let d = model.sample(&mut rng, Region::NorthAmerica, Region::EasternAsia);
//! assert!(d.as_millis() >= 30, "transpacific latency is not sub-30ms");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod clock;
pub mod latency;

pub use bandwidth::BandwidthClass;
pub use clock::{ClockModel, ClockSkew};
pub use latency::LatencyModel;
