//! Time-ordered event queue.
//!
//! Delivers events in non-decreasing time order, breaking ties by
//! insertion order (FIFO). Deterministic tie-breaking is essential: two
//! messages scheduled for the same nanosecond must always be processed in
//! the same order, or replays diverge.
//!
//! Layout: the priority heap holds only 24-byte `(time, seq, slot)` keys;
//! event payloads live in a slab (`Vec<Option<E>>` + free list) and never
//! move while the heap sifts. Every simulated message costs one push and
//! one pop, so the bytes shuffled per sift are a first-order term of
//! campaign wall time — with ~50-byte payloads this roughly halves queue
//! cost versus heaping the events themselves. Because `seq` is unique the
//! `(time, seq)` order is *total*, so the pop sequence is independent of
//! internal heap layout; the property tests below pin exactly that
//! contract.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ethmeter_types::SimTime;

/// An event queue ordered by `(time, insertion sequence)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Key>,
    /// Slab of pending payloads, addressed by `Key::slot`.
    events: Vec<Option<E>>,
    /// Vacated slab slots available for reuse.
    free: Vec<u32>,
    next_seq: u64,
}

/// Heap key: orders by `(time, seq)`, carries the payload's slab slot.
#[derive(Debug, Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            events: Vec::with_capacity(cap),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at the absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.events[s as usize] = Some(event);
                s
            }
            None => {
                let s = u32::try_from(self.events.len()).expect("pending-event slots exhausted");
                self.events.push(Some(event));
                s
            }
        };
        self.heap.push(Key { time, seq, slot });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let key = self.heap.pop()?;
        let event = self.events[key.slot as usize]
            .take()
            .expect("heap keys reference live slots");
        self.free.push(key.slot);
        Some((key.time, event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|k| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        q.push(t(1), "a");
        q.push(t(3), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "b")));
        assert_eq!(q.pop(), Some((t(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(t(2), 1);
        q.push(t(1), 2);
        q.push(t(2), 3);
        q.push(t(1), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(9), ());
        q.push(t(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Steady-state churn at depth 2 must not grow the slab.
        q.push(t(0), 0u64);
        q.push(t(1), 1u64);
        for i in 2..1_000u64 {
            q.pop().expect("primed");
            q.push(t(i), i);
        }
        assert_eq!(q.len(), 2);
        assert!(q.events.len() <= 3, "slab grew to {}", q.events.len());
    }

    #[test]
    fn deep_heaps_drain_sorted() {
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.push(t(i.wrapping_mul(2_654_435_761) % 97), i);
        }
        let mut prev = None;
        let mut n = 0;
        while let Some((time, _)) = q.pop() {
            if let Some(p) = prev {
                assert!(time >= p, "heap order violated");
            }
            prev = Some(time);
            n += 1;
        }
        assert_eq!(n, 1_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Against arbitrary interleavings of (time, payload) pushes —
        /// including heavy timestamp collisions — the pop sequence must be
        /// exactly the stable sort of the input by time: non-decreasing
        /// times, FIFO among equal instants. This is the engine's replay
        /// guarantee in one property.
        #[test]
        fn pop_order_is_stable_sort_by_time(
            times in proptest::collection::vec(0u64..16, 0..128),
        ) {
            let mut q = EventQueue::new();
            for (payload, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), payload);
            }
            let mut model: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            // Stable sort keeps insertion order among equal times — the
            // FIFO contract the queue must honor.
            model.sort_by_key(|&(t, _)| t);
            let popped: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
            prop_assert_eq!(popped, model);
            prop_assert!(q.is_empty());
        }

        /// Interleaved push/pop phases never break the ordering contract:
        /// after any prefix of operations, `peek_time` equals the earliest
        /// pending time and pops stay non-decreasing from the last pop.
        #[test]
        fn interleaved_push_pop_keeps_order(
            ops in proptest::collection::vec((0u64..8, 0u64..4), 1..96),
        ) {
            let mut q = EventQueue::with_capacity(8);
            let mut pending: Vec<(u64, u64)> = Vec::new(); // (time, seq)
            for (seq, &(t, pops)) in ops.iter().enumerate() {
                let seq = seq as u64;
                q.push(SimTime::from_nanos(t), seq);
                pending.push((t, seq));
                for _ in 0..pops {
                    prop_assert_eq!(
                        q.peek_time().map(SimTime::as_nanos),
                        pending.iter().map(|&(t, _)| t).min()
                    );
                    let Some((got_t, got_e)) = q.pop() else {
                        prop_assert!(pending.is_empty());
                        break;
                    };
                    // The popped entry is the FIFO-earliest at the minimum
                    // pending time.
                    let min_t = pending.iter().map(|&(t, _)| t).min().expect("non-empty");
                    let expect_seq = pending
                        .iter()
                        .filter(|&&(t, _)| t == min_t)
                        .map(|&(_, s)| s)
                        .min()
                        .expect("non-empty");
                    prop_assert_eq!(got_t.as_nanos(), min_t);
                    prop_assert_eq!(got_e, expect_seq);
                    pending.retain(|&(_, s)| s != expect_seq);
                }
            }
            prop_assert_eq!(q.len(), pending.len());
        }
    }
}
