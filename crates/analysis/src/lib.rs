//! The processing pipeline: from raw observer logs to every table and
//! figure of the paper's §III.
//!
//! Each module owns one experiment family and produces a typed report with
//! a `Display` implementation that prints the paper-style table:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`propagation`] | Figure 1 (block propagation delay PDF) |
//! | [`redundancy`] | Table II (redundant block receptions) |
//! | [`first_observation`] | Figures 2 and 3 (geographic first-observation shares, per-pool breakdown) |
//! | [`commit`] | Figures 4 and 5 (inclusion/commit CDFs, in- vs out-of-order) |
//! | [`empty_blocks`] | Figure 6 (empty blocks per pool) |
//! | [`forks`] | Table III and §III-C5 (fork census, one-miner forks) |
//! | [`sequences`] | Figure 7 and §III-D (consecutive-block sequences, censorship windows) |
//!
//! All analyzers consume a [`ethmeter_measure::CampaignData`]; the
//! sequence analyses additionally accept bare miner sequences so the fast
//! chain-only simulator can feed them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod empty_blocks;
pub mod first_observation;
pub mod forks;
pub mod propagation;
pub mod redundancy;
pub mod sequences;

#[cfg(test)]
pub(crate) mod testutil;
