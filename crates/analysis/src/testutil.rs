//! Shared builders of synthetic campaigns with hand-computable properties.

use ethmeter_chain::block::BlockBuilder;
use ethmeter_chain::tree::BlockTree;
use ethmeter_chain::tx::Transaction;
use ethmeter_measure::{BlockMsgKind, CampaignData, GroundTruth, ObserverLog, VantagePoint};
use ethmeter_types::{
    AccountId, BlockHash, ByteSize, FxHashMap, NodeId, PoolId, SimDuration, SimTime, TxId,
};

/// Number of canonical blocks the synthetic campaigns build.
pub const BLOCKS: usize = 20;

/// Mean inter-block time used by the builders.
pub fn interblock() -> SimDuration {
    SimDuration::from_secs_f64(13.3)
}

/// Builds a linear 20-block chain, alternating miners pool-0 ("Ethermine")
/// and pool-1 ("Sparkpool"), with blocks sealed 13.3s apart.
pub fn linear_tree() -> (BlockTree, Vec<BlockHash>) {
    let mut tree = BlockTree::new();
    let mut hashes = Vec::new();
    let mut parent = tree.genesis_hash();
    for i in 0..BLOCKS as u64 {
        let block = BlockBuilder::new(parent, i + 1, PoolId((i % 2) as u16))
            .mined_at(SimTime::ZERO + interblock() * (i + 1))
            .salt(i)
            .build();
        parent = block.hash();
        hashes.push(parent);
        tree.insert(block).expect("linear insert");
    }
    (tree, hashes)
}

/// Ground truth around a tree.
pub fn truth(tree: BlockTree, txs: FxHashMap<TxId, Transaction>) -> GroundTruth {
    GroundTruth {
        tree,
        txs,
        pool_names: vec!["Ethermine".into(), "Sparkpool".into()],
        pool_shares: vec![0.55, 0.45],
        interblock: interblock(),
        duration: interblock() * (BLOCKS as u64 + 1),
    }
}

/// A campaign where every block is first observed by the EA observer at
/// its sealing time and reaches the other observers after the given
/// per-observer offsets (ms), ordered [EA, NA, WE, CE].
pub fn campaign_with_block_spread(offsets_ms: &[i64; 4]) -> CampaignData {
    campaign_with_block_spread_and_skew(offsets_ms, &[0, 0, 0, 0])
}

/// Like [`campaign_with_block_spread`], with per-observer clock offsets
/// (ns) applied to the local timestamps.
pub fn campaign_with_block_spread_and_skew(
    offsets_ms: &[i64; 4],
    skew_ns: &[i64; 4],
) -> CampaignData {
    let (tree, hashes) = linear_tree();
    // Observer order: EA, NA, WE, CE (EA first to make it the winner).
    let vantages = [
        VantagePoint {
            name: "EA".into(),
            region: ethmeter_types::Region::EasternAsia,
            peer_target: 400,
            default_peers: false,
        },
        VantagePoint {
            name: "NA".into(),
            region: ethmeter_types::Region::NorthAmerica,
            peer_target: 400,
            default_peers: false,
        },
        VantagePoint {
            name: "WE".into(),
            region: ethmeter_types::Region::WesternEurope,
            peer_target: 400,
            default_peers: false,
        },
        VantagePoint {
            name: "CE".into(),
            region: ethmeter_types::Region::CentralEurope,
            peer_target: 400,
            default_peers: false,
        },
    ];
    let mut observers = Vec::new();
    for (oi, v) in vantages.into_iter().enumerate() {
        let mut log = ObserverLog::new();
        for (bi, &hash) in hashes.iter().enumerate() {
            let sealed = SimTime::ZERO + interblock() * (bi as u64 + 1);
            let true_arrival = sealed.offset_by(offsets_ms[oi] * 1_000_000);
            let local = true_arrival.offset_by(skew_ns[oi]);
            log.record_block_msg(
                hash,
                BlockMsgKind::FullBlock,
                NodeId(1),
                local,
                true_arrival,
            );
        }
        observers.push((v, log));
    }
    CampaignData {
        observers,
        truth: truth(tree, FxHashMap::default()),
    }
}

/// Builds a transaction committed in the block at `height` (1-based) with
/// the given sender/nonce, submitted at `submitted`.
pub fn tx(id: u64, sender: u32, nonce: u64, submitted: SimTime) -> Transaction {
    Transaction {
        id: TxId(id),
        sender: AccountId(sender),
        nonce,
        gas_price: 1,
        gas: 21_000,
        size: ByteSize::from_bytes(110),
        submitted_at: submitted,
        origin: NodeId(0),
    }
}
