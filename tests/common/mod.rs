//! Shared across integration suites: the pinned golden campaign table.
//!
//! One source of truth — `tests/golden.rs` checks every row in both
//! build profiles, and `tests/selfish.rs` asserts the behavior layer
//! leaves the all-honest rows untouched. Re-capture after an
//! *intentional* behavior change with:
//!
//! ```text
//! ETHMETER_BLESS=1 cargo test --test golden -- --nocapture
//! ```
//!
//! and paste the printed rows over the constants below.

use ethmeter::prelude::*;

/// One pinned campaign: (label, preset, seed, simulated minutes, digest).
pub const GOLDENS: [(&str, Preset, u64, u64, u64); 3] = [
    ("tiny-101", Preset::Tiny, 101, 5, 0x5663e369735821a8),
    ("tiny-202", Preset::Tiny, 202, 5, 0xd7a88da55ded6017),
    ("small-707", Preset::Small, 707, 5, 0xbdfa4b2f6ca4c301),
];

/// The digest pinned for one golden label.
///
/// # Panics
///
/// Panics if the label is not in [`GOLDENS`].
#[allow(dead_code)] // each test crate uses a different subset
pub fn digest(label: &str) -> u64 {
    GOLDENS
        .iter()
        .find(|(l, ..)| *l == label)
        .unwrap_or_else(|| panic!("no golden named {label}"))
        .4
}
