//! Observer logs: what one instrumented node recorded.
//!
//! Memory note: the paper kept 600 GB of raw per-message logs. We keep the
//! same information in aggregated form — per block: the first reception
//! (time/kind/peer) plus reception counters by kind; per transaction: the
//! first reception. This is lossless for every analysis in §III and keeps
//! month-scale simulations in memory. Raw per-message streams can be
//! reconstructed for small runs via the `csv` module's record export.

use ethmeter_types::{BlockHash, FxHashMap, NodeId, SimTime, TxId};

/// How a block reached the observer (Table II's two message families).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockMsgKind {
    /// `NewBlockHashes` — hash-only announcement.
    Announce,
    /// `NewBlock` or `BlockBody` — header + body ("whole block").
    FullBlock,
}

/// Aggregated reception record of one block at one observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRecord {
    /// The block.
    pub hash: BlockHash,
    /// First reception, observer's local (NTP-skewed) clock.
    pub first_local: SimTime,
    /// First reception, true simulation clock (ground truth; the real
    /// experiment does not have this column).
    pub first_true: SimTime,
    /// Kind of the first reception.
    pub first_kind: BlockMsgKind,
    /// Peer that delivered the first message.
    pub first_from: NodeId,
    /// Total announcements received (including the first, if it was one).
    pub announces: u32,
    /// Total whole-block messages received.
    pub full_blocks: u32,
}

impl BlockRecord {
    /// All receptions of this block.
    pub fn total_receptions(&self) -> u32 {
        self.announces + self.full_blocks
    }
}

/// First-reception record of one transaction at one observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRecord {
    /// The transaction.
    pub id: TxId,
    /// First reception, local clock.
    pub first_local: SimTime,
    /// First reception, true clock.
    pub first_true: SimTime,
    /// Delivering peer (the observer itself for locally submitted txs).
    pub from: NodeId,
    /// Sequence number of this first-reception among the observer's tx
    /// arrivals (0-based) — makes out-of-order analysis independent of
    /// timestamp ties.
    pub arrival_seq: u64,
}

/// Everything one observer recorded.
#[derive(Debug, Clone, Default)]
pub struct ObserverLog {
    /// Keyed through `FxHasher64`: recording happens once per delivered
    /// message at every observer, and block/tx ids are already well-mixed
    /// 64-bit values, so the default SipHash is pure overhead. Nothing
    /// iterates these maps for output without sorting first.
    blocks: FxHashMap<BlockHash, BlockRecord>,
    txs: FxHashMap<TxId, TxRecord>,
    tx_arrivals: u64,
}

impl ObserverLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a block-bearing or announcement message.
    pub fn record_block_msg(
        &mut self,
        hash: BlockHash,
        kind: BlockMsgKind,
        from: NodeId,
        local: SimTime,
        true_time: SimTime,
    ) {
        let entry = self.blocks.entry(hash).or_insert(BlockRecord {
            hash,
            first_local: local,
            first_true: true_time,
            first_kind: kind,
            first_from: from,
            announces: 0,
            full_blocks: 0,
        });
        match kind {
            BlockMsgKind::Announce => entry.announces += 1,
            BlockMsgKind::FullBlock => entry.full_blocks += 1,
        }
        // Defensive: receptions may be recorded out of true-time order only
        // if the driver misbehaves; keep the earliest.
        if true_time < entry.first_true {
            entry.first_true = true_time;
            entry.first_local = local;
            entry.first_kind = kind;
            entry.first_from = from;
        }
    }

    /// Records a transaction reception (only the first one is kept).
    pub fn record_tx(&mut self, id: TxId, from: NodeId, local: SimTime, true_time: SimTime) {
        if self.txs.contains_key(&id) {
            return;
        }
        let seq = self.tx_arrivals;
        self.tx_arrivals += 1;
        self.txs.insert(
            id,
            TxRecord {
                id,
                first_local: local,
                first_true: true_time,
                from,
                arrival_seq: seq,
            },
        );
    }

    /// The record of a block, if observed.
    pub fn block(&self, hash: BlockHash) -> Option<&BlockRecord> {
        self.blocks.get(&hash)
    }

    /// The record of a transaction, if observed.
    pub fn tx(&self, id: TxId) -> Option<&TxRecord> {
        self.txs.get(&id)
    }

    /// Number of distinct blocks observed.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of distinct transactions observed.
    pub fn tx_count(&self) -> usize {
        self.txs.len()
    }

    /// Iterates over block records (arbitrary, but deterministic, order).
    pub fn blocks(&self) -> impl Iterator<Item = &BlockRecord> + '_ {
        // detlint::allow(unordered-iter, reason = "documented-unordered accessor over an FxHashMap (deterministic per process); goldens pin the observable results and consumers sort or fold commutatively")
        self.blocks.values()
    }

    /// Iterates over transaction records (arbitrary, but deterministic, order).
    pub fn txs(&self) -> impl Iterator<Item = &TxRecord> + '_ {
        // detlint::allow(unordered-iter, reason = "documented-unordered accessor over an FxHashMap (deterministic per process); goldens pin the observable results and consumers sort or fold commutatively")
        self.txs.values()
    }

    /// Forgets every record, retaining the maps' allocations. A cleared
    /// log behaves exactly like a new one.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.txs.clear();
        self.tx_arrivals = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn first_reception_wins() {
        let mut log = ObserverLog::new();
        let h = BlockHash(1);
        log.record_block_msg(h, BlockMsgKind::Announce, NodeId(1), t(10), t(11));
        log.record_block_msg(h, BlockMsgKind::FullBlock, NodeId(2), t(20), t(21));
        let r = log.block(h).expect("recorded");
        assert_eq!(r.first_kind, BlockMsgKind::Announce);
        assert_eq!(r.first_from, NodeId(1));
        assert_eq!(r.first_true, t(11));
        assert_eq!(r.announces, 1);
        assert_eq!(r.full_blocks, 1);
        assert_eq!(r.total_receptions(), 2);
    }

    #[test]
    fn out_of_order_recording_keeps_earliest() {
        let mut log = ObserverLog::new();
        let h = BlockHash(2);
        log.record_block_msg(h, BlockMsgKind::FullBlock, NodeId(2), t(20), t(21));
        log.record_block_msg(h, BlockMsgKind::Announce, NodeId(1), t(10), t(11));
        let r = log.block(h).expect("recorded");
        assert_eq!(r.first_true, t(11));
        assert_eq!(r.first_kind, BlockMsgKind::Announce);
    }

    #[test]
    fn tx_first_only() {
        let mut log = ObserverLog::new();
        log.record_tx(TxId(5), NodeId(1), t(1), t(2));
        log.record_tx(TxId(5), NodeId(9), t(0), t(0)); // ignored duplicate
        log.record_tx(TxId(6), NodeId(2), t(3), t(4));
        assert_eq!(log.tx_count(), 2);
        let r5 = log.tx(TxId(5)).expect("recorded");
        assert_eq!(r5.from, NodeId(1));
        assert_eq!(r5.arrival_seq, 0);
        let r6 = log.tx(TxId(6)).expect("recorded");
        assert_eq!(r6.arrival_seq, 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut log = ObserverLog::new();
        let h = BlockHash(3);
        for i in 0..7 {
            log.record_block_msg(
                h,
                BlockMsgKind::FullBlock,
                NodeId(i),
                t(i as u64),
                t(i as u64),
            );
        }
        for i in 0..3 {
            log.record_block_msg(h, BlockMsgKind::Announce, NodeId(10 + i), t(50), t(50));
        }
        let r = log.block(h).expect("recorded");
        assert_eq!(r.full_blocks, 7);
        assert_eq!(r.announces, 3);
        assert_eq!(log.block_count(), 1);
    }
}
